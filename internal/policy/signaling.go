package policy

import (
	"repro/internal/graph"
	"repro/internal/paths"
	"repro/internal/sim"
)

// The three §4 policies also implement sim.AttemptPolicy, exposing their
// candidate-path sequences and per-hop admission rules to the two-phase
// signaling runner (sim.RunSignaling).

// Attempt implements sim.AttemptPolicy: single-path routing has exactly one
// candidate, the SI primary.
func (p SinglePath) Attempt(c sim.Call, i int) (paths.Path, bool, bool) {
	if i != 0 {
		return paths.Path{}, false, false
	}
	return p.T.SelectPrimary(c), false, true
}

// AdmitsHop implements sim.AttemptPolicy.
func (p SinglePath) AdmitsHop(s *sim.State, id graph.LinkID, _ bool) bool {
	return s.AdmitsPrimary(id)
}

// Attempt implements sim.AttemptPolicy: the primary, then every alternate
// in order of increasing length.
func (p Uncontrolled) Attempt(c sim.Call, i int) (paths.Path, bool, bool) {
	if i == 0 {
		return p.T.SelectPrimary(c), false, true
	}
	alts := p.T.AlternatesOf(c)
	if i-1 < len(alts) {
		return alts[i-1], true, true
	}
	return paths.Path{}, false, false
}

// AdmitsHop implements sim.AttemptPolicy: uncontrolled alternates need only
// spare capacity.
func (p Uncontrolled) AdmitsHop(s *sim.State, id graph.LinkID, _ bool) bool {
	return s.AdmitsPrimary(id)
}

// Attempt implements sim.AttemptPolicy.
func (p Controlled) Attempt(c sim.Call, i int) (paths.Path, bool, bool) {
	if i == 0 {
		return p.T.SelectPrimary(c), false, true
	}
	alts := p.T.AlternatesOf(c)
	if i-1 < len(alts) {
		return alts[i-1], true, true
	}
	return paths.Path{}, false, false
}

// AdmitsHop implements sim.AttemptPolicy: alternates are admitted only below
// the link's protection boundary.
func (p Controlled) AdmitsHop(s *sim.State, id graph.LinkID, alternate bool) bool {
	if !alternate {
		return s.AdmitsPrimary(id)
	}
	return s.AdmitsAlternate(id, p.R[id])
}
