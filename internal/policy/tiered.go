package policy

import (
	"fmt"

	"repro/internal/erlang"
	"repro/internal/graph"
	"repro/internal/paths"
	"repro/internal/sim"
)

// PerLinkH computes, for every link, the footnote-5 variant of the design
// parameter: H^k is the maximum hop length over the alternate paths that
// actually traverse link k (rather than one global H). Links touched only by
// short alternates can then run smaller protection levels, freeing alternate
// routing at low load while preserving the guarantee: every alternate path P
// through k has |P| <= H^k, so Σ_{k∈P} L^k <= Σ_{k∈P} 1/H^k <= |P|/|P| = 1.
//
// Links no alternate traverses get H^k = 1 (protection 0 — immaterial, they
// never see alternate-routed calls).
func PerLinkH(t *Table) []int {
	g := t.Graph()
	h := make([]int, g.NumLinks())
	for i := range h {
		h[i] = 1
	}
	n := g.NumNodes()
	for a := graph.NodeID(0); int(a) < n; a++ {
		for b := graph.NodeID(0); int(b) < n; b++ {
			if a == b {
				continue
			}
			rs := t.Routes(a, b)
			if rs == nil {
				continue
			}
			for _, alt := range rs.Alternates {
				hops := alt.Hops()
				for _, id := range alt.Links {
					if hops > h[id] {
						h[id] = hops
					}
				}
			}
		}
	}
	return h
}

// NewControlledPerLinkH builds the controlled policy with per-link H^k
// protection levels derived from the link loads.
func NewControlledPerLinkH(t *Table, linkLoads []float64) (Controlled, error) {
	g := t.Graph()
	if len(linkLoads) != g.NumLinks() {
		return Controlled{}, fmt.Errorf("policy: %d loads for %d links", len(linkLoads), g.NumLinks())
	}
	hs := PerLinkH(t)
	r := make([]int, g.NumLinks())
	for id := 0; id < g.NumLinks(); id++ {
		r[id] = erlang.ProtectionLevel(linkLoads[id], g.Link(graph.LinkID(id)).Capacity, hs[id])
	}
	return Controlled{T: t, R: r}, nil
}

// ControlledTiered prioritizes shorter alternates, the §3.2 variant the
// paper mentions but does not study: alternates of at most SplitHops hops
// are admitted under the (smaller) RShort levels, longer ones under RLong.
// Each class's levels satisfy Equation 15 against its own maximum length, so
// the single-path-dominance guarantee is preserved: a short alternate of
// |P| <= SplitHops hops displaces at most |P|/SplitHops <= 1 primary calls,
// a long one at most |P|/H <= 1.
type ControlledTiered struct {
	T *Table
	// SplitHops separates the classes (e.g. 2: two-hop alternates get the
	// relaxed levels).
	SplitHops int
	// RShort and RLong are per-link protection levels for the two classes.
	RShort, RLong []int
}

// NewControlledTiered derives both level vectors from the link loads:
// RShort via Equation 15 with H = splitHops, RLong with the table's H.
func NewControlledTiered(t *Table, linkLoads []float64, splitHops int) (ControlledTiered, error) {
	g := t.Graph()
	if len(linkLoads) != g.NumLinks() {
		return ControlledTiered{}, fmt.Errorf("policy: %d loads for %d links", len(linkLoads), g.NumLinks())
	}
	if splitHops < 1 || splitHops > t.MaxAltHops {
		return ControlledTiered{}, fmt.Errorf("policy: splitHops %d outside [1, %d]", splitHops, t.MaxAltHops)
	}
	rs := make([]int, g.NumLinks())
	rl := make([]int, g.NumLinks())
	for id := 0; id < g.NumLinks(); id++ {
		c := g.Link(graph.LinkID(id)).Capacity
		rs[id] = erlang.ProtectionLevel(linkLoads[id], c, splitHops)
		rl[id] = erlang.ProtectionLevel(linkLoads[id], c, t.MaxAltHops)
	}
	return ControlledTiered{T: t, SplitHops: splitHops, RShort: rs, RLong: rl}, nil
}

// Name implements sim.Policy.
func (p ControlledTiered) Name() string { return "controlled-tiered" }

// PrimaryPath implements sim.Policy.
func (p ControlledTiered) PrimaryPath(_ *sim.State, c sim.Call) paths.Path {
	return p.T.SelectPrimary(c)
}

// Route implements sim.Policy.
func (p ControlledTiered) Route(s *sim.State, c sim.Call) (paths.Path, bool, bool) {
	prim := p.T.SelectPrimary(c)
	if ok, _ := s.PathAdmitsPrimary(prim); ok {
		return prim, false, true
	}
	for _, alt := range p.T.AlternatesOf(c) {
		r := p.RLong
		if alt.Hops() <= p.SplitHops {
			r = p.RShort
		}
		if ok, _ := s.PathAdmitsAlternate(alt, r); ok {
			return alt, true, true
		}
	}
	return paths.Path{}, false, false
}
