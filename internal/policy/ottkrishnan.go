package policy

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/mdp"
	"repro/internal/paths"
	"repro/internal/sim"
)

// OttKrishnan implements the separable shadow-price routing of Ott &
// Krishnan (ITC 1985), the comparator of §4.2.2: a call is routed on the
// candidate path (primary or any alternate of the suite) minimizing the sum
// of per-link shadow prices at the current occupancies, and blocked if even
// that minimum exceeds the call's revenue. The separability assumption —
// path price = Σ link prices — is exactly what the paper argues breaks down
// on sparse general meshes.
type OttKrishnan struct {
	T *Table
	// Prices[k][s] is the shadow price of admitting a call on link k at
	// occupancy s (s in [0, C_k)).
	Prices [][]float64
	// Revenue is the per-call revenue against which path prices are
	// compared; the paper's single call class has unit revenue.
	Revenue float64
}

// NewOttKrishnan builds the policy from per-link offered loads. Following
// the paper's §4.2.2 port of the scheme, the loads are the *unreduced*
// primary intensities Λ^k (no reduced-load fixed point). Links with zero
// load get zero prices (no future losses to cause).
func NewOttKrishnan(t *Table, linkLoads []float64) (OttKrishnan, error) {
	g := t.Graph()
	if len(linkLoads) != g.NumLinks() {
		return OttKrishnan{}, fmt.Errorf("policy: %d loads for %d links", len(linkLoads), g.NumLinks())
	}
	prices := make([][]float64, g.NumLinks())
	for id := 0; id < g.NumLinks(); id++ {
		c := g.Link(graph.LinkID(id)).Capacity
		if c == 0 {
			continue
		}
		if linkLoads[id] <= 0 {
			prices[id] = make([]float64, c)
			continue
		}
		prices[id] = mdp.ShadowPrices(linkLoads[id], c)
	}
	return OttKrishnan{T: t, Prices: prices, Revenue: 1}, nil
}

// Name implements sim.Policy.
func (p OttKrishnan) Name() string { return "ott-krishnan" }

// PrimaryPath implements sim.Policy.
func (p OttKrishnan) PrimaryPath(_ *sim.State, c sim.Call) paths.Path {
	return p.T.SelectPrimary(c)
}

// pathPrice sums the link shadow prices along pth at current occupancies;
// ok=false if some link has no spare capacity.
func (p OttKrishnan) pathPrice(s *sim.State, pth paths.Path) (float64, bool) {
	total := 0.0
	for _, id := range pth.Links {
		if !s.AdmitsPrimary(id) {
			return 0, false
		}
		total += p.Prices[id][s.Occupancy(id)]
	}
	return total, true
}

// Route implements sim.Policy: evaluate the primary and every alternate,
// pick the cheapest feasible path, admit if its price does not exceed the
// revenue. Candidates are scanned primary-first then by increasing length,
// so ties resolve toward the SI choice.
func (p OttKrishnan) Route(s *sim.State, c sim.Call) (paths.Path, bool, bool) {
	prim := p.T.SelectPrimary(c)
	best := paths.Path{}
	bestPrice := 0.0
	bestAlt := false
	found := false
	if price, ok := p.pathPrice(s, prim); ok {
		best, bestPrice, bestAlt, found = prim, price, false, true
	}
	for _, alt := range p.T.alternatesFor(c, prim) {
		price, ok := p.pathPrice(s, alt)
		if !ok {
			continue
		}
		if !found || price < bestPrice {
			best, bestPrice, bestAlt, found = alt, price, true, true
		}
	}
	if !found || bestPrice > p.Revenue {
		return paths.Path{}, false, false
	}
	return best, bestAlt, true
}
