package policy

import (
	"fmt"

	"repro/internal/erlang"
	"repro/internal/graph"
	"repro/internal/paths"
	"repro/internal/sim"
)

// SinglePath admits calls on their SI primary path only — the paper's
// "single-path routing" baseline (alternate routing prohibited). With
// bifurcated primaries the chosen route is still picked state-independently
// per call, matching the paper's loose use of "single-path" (§1).
type SinglePath struct {
	T *Table
}

// Name implements sim.Policy.
func (p SinglePath) Name() string { return "single-path" }

// PrimaryPath implements sim.Policy.
func (p SinglePath) PrimaryPath(_ *sim.State, c sim.Call) paths.Path {
	return p.T.SelectPrimary(c)
}

// Route implements sim.Policy.
func (p SinglePath) Route(s *sim.State, c sim.Call) (paths.Path, bool, bool) {
	prim := p.T.SelectPrimary(c)
	if ok, _ := s.PathAdmitsPrimary(prim); ok {
		return prim, false, true
	}
	return paths.Path{}, false, false
}

// Uncontrolled is alternate routing with no state protection: a call blocked
// on its primary path attempts every alternate in order of increasing length
// and is admitted on the first with spare capacity on all links.
type Uncontrolled struct {
	T *Table
}

// Name implements sim.Policy.
func (p Uncontrolled) Name() string { return "uncontrolled-alternate" }

// PrimaryPath implements sim.Policy.
func (p Uncontrolled) PrimaryPath(_ *sim.State, c sim.Call) paths.Path {
	return p.T.SelectPrimary(c)
}

// Route implements sim.Policy.
func (p Uncontrolled) Route(s *sim.State, c sim.Call) (paths.Path, bool, bool) {
	prim := p.T.SelectPrimary(c)
	if ok, _ := s.PathAdmitsPrimary(prim); ok {
		return prim, false, true
	}
	for _, alt := range p.T.alternatesFor(c, prim) {
		if ok, _ := s.PathAdmitsAlternate(alt, nil); ok {
			return alt, true, true
		}
	}
	return paths.Path{}, false, false
}

// Controlled is the paper's scheme: alternate attempts are admitted on a
// link only while its occupancy is at most C−r−1, with per-link protection
// levels r chosen by Equation 15 so that controlled alternate routing is
// guaranteed (under the Poisson assumptions) to improve on single-path
// routing.
type Controlled struct {
	T *Table
	// R is the state-protection level per link, indexed by LinkID.
	R []int
}

// NewControlled computes the protection levels from the per-link primary
// demands (Equation 1 loads, indexed by LinkID) via Equation 15 with the
// table's H, and returns the ready policy.
func NewControlled(t *Table, linkLoads []float64) (Controlled, error) {
	g := t.Graph()
	if len(linkLoads) != g.NumLinks() {
		return Controlled{}, fmt.Errorf("policy: %d loads for %d links", len(linkLoads), g.NumLinks())
	}
	caps := make([]int, g.NumLinks())
	for id := range caps {
		caps[id] = g.Link(graph.LinkID(id)).Capacity
	}
	// The shared-cache batch dedups links with equal (load, capacity).
	r := erlang.ProtectionLevels(linkLoads, caps, t.MaxAltHops, nil)
	return Controlled{T: t, R: r}, nil
}

// Name implements sim.Policy.
func (p Controlled) Name() string { return "controlled-alternate" }

// Protection returns the per-link protection levels r^k (indexed by
// LinkID). The slice is the policy's own — callers must not mutate it.
func (p Controlled) Protection() []int { return p.R }

// PrimaryPath implements sim.Policy.
func (p Controlled) PrimaryPath(_ *sim.State, c sim.Call) paths.Path {
	return p.T.SelectPrimary(c)
}

// Route implements sim.Policy.
func (p Controlled) Route(s *sim.State, c sim.Call) (paths.Path, bool, bool) {
	prim := p.T.SelectPrimary(c)
	if ok, _ := s.PathAdmitsPrimary(prim); ok {
		return prim, false, true
	}
	for _, alt := range p.T.alternatesFor(c, prim) {
		if ok, _ := s.PathAdmitsAlternate(alt, p.R); ok {
			return alt, true, true
		}
	}
	return paths.Path{}, false, false
}
