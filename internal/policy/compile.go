package policy

import "repro/internal/routetable"

// This file implements sim.TableCompiler for the table-driven policies:
// each one describes its routing decision as the table's flattened route
// rows (routetable.Flat, shared and built once per table) plus the
// protection-level overlay that distinguishes the schemes. sim.Run uses
// the compiled form to execute these policies on its fast path; the
// Route/PrimaryPath methods remain the semantic ground truth (and the
// fallback for everything not listed here, e.g. Ott–Krishnan).

// Flat returns the table's compiled forwarding layout: every pair's
// primaries and alternates flattened into contiguous link-id rows. It is
// built on first use and cached — safe under concurrent use, since tables
// are shared across parallel runs — and snapshots the suites as they are
// at that moment: tables are treated as immutable once routing starts.
// A nil return means the table cannot be flattened (a route references a
// link outside the graph's id space) and callers must stay interpreted.
func (t *Table) Flat() *routetable.Flat {
	t.flatOnce.Do(t.buildFlat)
	return t.flat
}

func (t *Table) buildFlat() {
	b := routetable.NewBuilder(t.n, t.g.NumLinks(), t.selectorSeed)
	for p := 0; p < t.n*t.n; p++ {
		b.StartPair()
		rs := t.sets[p]
		if rs == nil {
			continue
		}
		for _, wp := range rs.Primaries {
			b.Primary(wp.Path.Links, wp.Weight)
		}
		for _, alt := range rs.Alternates {
			b.Alternate(alt.Links)
		}
	}
	t.flat = b.Finish()
}

// compiled wraps a Flat with a protection overlay, reporting ok=false for
// an unflattenable table.
func compiled(f *routetable.Flat, prot [][]int, noAlt bool) (*routetable.Compiled, bool) {
	if f == nil {
		return nil, false
	}
	return &routetable.Compiled{Flat: f, Prot: prot, NoAlternates: noAlt}, true
}

// CompileRoutes implements sim.TableCompiler: primaries only, no
// alternate rows attempted.
func (p SinglePath) CompileRoutes() (*routetable.Compiled, bool) {
	return compiled(p.T.Flat(), [][]int{nil}, true)
}

// CompileRoutes implements sim.TableCompiler: alternates admitted with no
// protection (r = 0 everywhere).
func (p Uncontrolled) CompileRoutes() (*routetable.Compiled, bool) {
	return compiled(p.T.Flat(), [][]int{nil}, false)
}

// CompileRoutes implements sim.TableCompiler: alternates admitted under
// the per-link protection levels R.
func (p Controlled) CompileRoutes() (*routetable.Compiled, bool) {
	return compiled(p.T.Flat(), [][]int{nil, p.R}, false)
}

// CompileRoutes implements sim.TableCompiler against the policy's current
// table and levels. sim.Run re-invokes it after every failure/repair
// epoch, so Swap (core.AdaptiveScheme's rederivation) is picked up by the
// compiled engine exactly when the interpreted one would see it.
func (p *Dynamic) CompileRoutes() (*routetable.Compiled, bool) {
	return compiled(p.t.Flat(), [][]int{nil, p.r}, false)
}

// CompileRoutes implements sim.TableCompiler: each alternate row is
// assigned the short or long threshold set by its hop count, mirroring
// the SplitHops test in Route.
func (p ControlledTiered) CompileRoutes() (*routetable.Compiled, bool) {
	f := p.T.Flat()
	if f == nil {
		return nil, false
	}
	sets := make([]uint8, f.NumRows())
	for r := range sets {
		set := uint8(2)
		if int(f.RowOff[r+1]-f.RowOff[r]) <= p.SplitHops {
			set = 1
		}
		sets[r] = set
	}
	return &routetable.Compiled{
		Flat:   f,
		Prot:   [][]int{nil, p.RShort, p.RLong},
		AltSet: sets,
	}, true
}
