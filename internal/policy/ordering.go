package policy

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/paths"
	"repro/internal/sim"
)

// ReorderDisjointFirst returns a copy of the table whose alternate suites
// are stably reordered so paths link-disjoint from the pair's primary come
// first (within the disjoint and non-disjoint groups the original
// increasing-length order is kept). An alternate sharing links with the
// primary can never help a call blocked on those shared links; under the
// instantaneous model attempting it merely fails, but under two-phase
// signaling each futile attempt costs a round trip — disjoint-first ordering
// removes that latency without changing which calls are ultimately
// admitted.
//
// Bifurcated tables are reordered against their first (highest-weight)
// primary.
func ReorderDisjointFirst(t *Table) *Table {
	out := &Table{
		g:            t.g,
		MaxAltHops:   t.MaxAltHops,
		n:            t.n,
		sets:         make([]*RouteSet, len(t.sets)),
		selectorSeed: t.selectorSeed,
	}
	for key, rs := range t.sets {
		if rs == nil {
			continue
		}
		prim := rs.Primaries[0].Path
		onPrimary := make(map[graph.LinkID]bool, len(prim.Links))
		for _, id := range prim.Links {
			onPrimary[id] = true
		}
		disjoint := func(p paths.Path) bool {
			for _, id := range p.Links {
				if onPrimary[id] {
					return false
				}
			}
			return true
		}
		alts := append([]paths.Path(nil), rs.Alternates...)
		sort.SliceStable(alts, func(i, j int) bool {
			return disjoint(alts[i]) && !disjoint(alts[j])
		})
		out.sets[key] = &RouteSet{Primaries: rs.Primaries, Alternates: alts}
	}
	return out
}

// The tiered and least-busy policies also implement sim.AttemptPolicy so
// they can run under the two-phase signaling model.

// Attempt implements sim.AttemptPolicy.
func (p ControlledTiered) Attempt(c sim.Call, i int) (paths.Path, bool, bool) {
	if i == 0 {
		return p.T.SelectPrimary(c), false, true
	}
	alts := p.T.AlternatesOf(c)
	if i-1 < len(alts) {
		return alts[i-1], true, true
	}
	return paths.Path{}, false, false
}

// AdmitsHop implements sim.AttemptPolicy. The signaling runner does not
// carry the attempt's path, so the hop rule uses the stricter (long-class)
// levels for alternates — a conservative approximation documented here; the
// instantaneous runner applies the exact per-length rule.
func (p ControlledTiered) AdmitsHop(s *sim.State, id graph.LinkID, alternate bool) bool {
	if !alternate {
		return s.AdmitsPrimary(id)
	}
	return s.AdmitsAlternate(id, p.RLong[id])
}

// Attempt implements sim.AttemptPolicy: least-busy selection is
// state-dependent at decision time, which the hop-by-hop signaling model
// cannot reproduce faithfully; the attempt sequence falls back to
// increasing length (the selection difference only affects which admitted
// alternate carries the call, not admission itself).
func (p LeastBusyAlternate) Attempt(c sim.Call, i int) (paths.Path, bool, bool) {
	if i == 0 {
		return p.T.SelectPrimary(c), false, true
	}
	alts := p.T.AlternatesOf(c)
	if i-1 < len(alts) {
		return alts[i-1], true, true
	}
	return paths.Path{}, false, false
}

// AdmitsHop implements sim.AttemptPolicy.
func (p LeastBusyAlternate) AdmitsHop(s *sim.State, id graph.LinkID, alternate bool) bool {
	if !alternate {
		return s.AdmitsPrimary(id)
	}
	prot := 0
	if p.R != nil {
		prot = p.R[id]
	}
	return s.AdmitsAlternate(id, prot)
}
