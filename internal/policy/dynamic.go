package policy

import (
	"repro/internal/paths"
	"repro/internal/sim"
)

// Dynamic is Controlled with a replaceable route table and protection
// levels: the policy half of online scheme adaptation under link failures
// (core.AdaptiveScheme swaps in a scheme re-derived from the degraded
// topology at each failure/repair epoch, see DESIGN.md §11). Swaps take
// effect for every admission and re-admission decision after them.
//
// A Dynamic is stateful — callers must use a fresh instance per run and
// must not share one across concurrent runs.
type Dynamic struct {
	t *Table
	r []int
}

// NewDynamic returns a dynamic controlled policy starting from the given
// table and per-link protection levels.
func NewDynamic(t *Table, r []int) *Dynamic {
	return &Dynamic{t: t, r: r}
}

// Swap replaces the route table and protection levels. The new table may
// cover a degraded topology whose r slice is shorter than the original
// link space; missing entries count as r = 0 (see
// sim.State.PathAdmitsAlternate).
func (p *Dynamic) Swap(t *Table, r []int) {
	p.t = t
	p.r = r
}

// Table returns the currently active route table.
func (p *Dynamic) Table() *Table { return p.t }

// Protection returns the currently active protection levels.
func (p *Dynamic) Protection() []int { return p.r }

// Name implements sim.Policy.
func (p *Dynamic) Name() string { return "controlled-adapted" }

// PrimaryPath implements sim.Policy.
func (p *Dynamic) PrimaryPath(_ *sim.State, c sim.Call) paths.Path {
	return p.t.SelectPrimary(c)
}

// Route implements sim.Policy. It is Controlled.Route against the policy's
// current table and levels.
func (p *Dynamic) Route(s *sim.State, c sim.Call) (paths.Path, bool, bool) {
	prim := p.t.SelectPrimary(c)
	if ok, _ := s.PathAdmitsPrimary(prim); ok {
		return prim, false, true
	}
	for _, alt := range p.t.alternatesFor(c, prim) {
		if ok, _ := s.PathAdmitsAlternate(alt, p.r); ok {
			return alt, true, true
		}
	}
	return paths.Path{}, false, false
}
