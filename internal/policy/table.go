// Package policy implements the routing policies compared in the paper's §4:
// single-path (state-independent only), uncontrolled alternate routing,
// controlled alternate routing with per-link state protection (the paper's
// contribution), and the Ott–Krishnan separable shadow-price comparator.
// All policies share a precomputed route table (primary path plus loop-free
// alternates in order of increasing length per O-D pair) and implement the
// sim.Policy interface.
package policy

import (
	"fmt"
	"sync"

	"repro/internal/graph"
	"repro/internal/paths"
	"repro/internal/routetable"
	"repro/internal/sim"
	"repro/internal/xrand"
)

// WeightedPath is one primary-path choice with its selection probability;
// the min-loss SI rule of §4 produces bifurcated primaries where an O-D pair
// splits across several paths.
type WeightedPath struct {
	Path   paths.Path
	Weight float64
}

// RouteSet holds the route suite of one ordered O-D pair.
type RouteSet struct {
	// Primaries are the SI primary choices; weights sum to 1. Single-path
	// SI rules (e.g. min-hop) have exactly one entry with weight 1.
	Primaries []WeightedPath
	// Alternates are every loop-free path of at most the table's hop limit,
	// ordered by increasing length, excluding all primaries. A blocked call
	// attempts them in order (§1).
	Alternates []paths.Path
}

// Table maps every ordered O-D pair to its route suite. Suites are stored
// in a dense slice indexed by origin·N+dest — the per-call lookup is on the
// simulator's hot path, and an array index beats hashing the pair.
type Table struct {
	g *graph.Graph
	// MaxAltHops is the H parameter of Equation 15: the maximum hop length
	// of any alternate-routed call.
	MaxAltHops int
	n          int
	sets       []*RouteSet
	// selectorSeed drives the deterministic per-call primary choice for
	// bifurcated primaries; policies sharing a table (or tables built with
	// the same seed) make identical choices per call ID, preserving common
	// random numbers across compared policies.
	selectorSeed int64
	// flat is the lazily built compiled form (see Flat); the Once makes
	// the build race-safe for tables shared across concurrent runs.
	flatOnce sync.Once
	flat     *routetable.Flat
}

// BuildMinHop constructs the route table for the deterministic min-hop SI
// rule: one primary per pair (lexicographic tie-break) and all loop-free
// alternates up to maxAltHops hops (0 means N−1, i.e. unlimited).
func BuildMinHop(g *graph.Graph, maxAltHops int) (*Table, error) {
	return BuildMinHopK(g, maxAltHops, 0)
}

// BuildMinHopK is BuildMinHop with the alternate suite additionally capped
// at the maxAlternates shortest paths per pair (0 means unlimited) — the
// form a deployment computing routes with a K-shortest-path algorithm
// (§4.2.1) would actually install. Capping the suite also makes the
// footnote-5 per-link H^k meaningful: with exhaustive loop-free alternates,
// near-Hamiltonian paths traverse essentially every link and H^k degenerates
// to the global H.
func BuildMinHopK(g *graph.Graph, maxAltHops, maxAlternates int) (*Table, error) {
	n := g.NumNodes()
	if maxAltHops <= 0 || maxAltHops > n-1 {
		maxAltHops = n - 1
	}
	t := &Table{g: g, MaxAltHops: maxAltHops, n: n, sets: make([]*RouteSet, n*n)}
	for i := graph.NodeID(0); int(i) < n; i++ {
		for j := graph.NodeID(0); int(j) < n; j++ {
			if i == j {
				continue
			}
			primary, ok := paths.MinHop(g, i, j)
			if !ok {
				return nil, fmt.Errorf("policy: no path %d→%d", i, j)
			}
			alts := paths.Alternates(g, i, j, primary, maxAltHops)
			if maxAlternates > 0 && len(alts) > maxAlternates {
				alts = alts[:maxAlternates]
			}
			t.sets[int(i)*n+int(j)] = &RouteSet{
				Primaries:  []WeightedPath{{Path: primary, Weight: 1}},
				Alternates: alts,
			}
		}
	}
	return t, nil
}

// BuildBifurcated constructs a route table from externally supplied
// bifurcated primaries (the min-loss SI rule of §4), with alternates being
// all loop-free paths up to maxAltHops excluding every primary of the pair.
// primaries must cover every ordered pair of distinct nodes and each pair's
// weights must sum to 1 (within 1e-9).
func BuildBifurcated(g *graph.Graph, primaries map[[2]graph.NodeID][]WeightedPath, maxAltHops int, selectorSeed int64) (*Table, error) {
	n := g.NumNodes()
	if maxAltHops <= 0 || maxAltHops > n-1 {
		maxAltHops = n - 1
	}
	t := &Table{g: g, MaxAltHops: maxAltHops, n: n, sets: make([]*RouteSet, n*n), selectorSeed: selectorSeed}
	for i := graph.NodeID(0); int(i) < n; i++ {
		for j := graph.NodeID(0); int(j) < n; j++ {
			if i == j {
				continue
			}
			key := [2]graph.NodeID{i, j}
			prim := primaries[key]
			if len(prim) == 0 {
				return nil, fmt.Errorf("policy: no primaries for %d→%d", i, j)
			}
			total := 0.0
			for _, wp := range prim {
				if err := paths.Validate(g, wp.Path); err != nil {
					return nil, fmt.Errorf("policy: primary for %d→%d: %w", i, j, err)
				}
				if wp.Weight < 0 {
					return nil, fmt.Errorf("policy: negative weight for %d→%d", i, j)
				}
				total += wp.Weight
			}
			if total < 1-1e-9 || total > 1+1e-9 {
				return nil, fmt.Errorf("policy: weights for %d→%d sum to %v", i, j, total)
			}
			all := paths.AllLoopFree(g, i, j, maxAltHops)
			var alts []paths.Path
		next:
			for _, p := range all {
				for _, wp := range prim {
					if p.Equal(wp.Path) {
						continue next
					}
				}
				alts = append(alts, p)
			}
			t.sets[int(i)*n+int(j)] = &RouteSet{Primaries: prim, Alternates: alts}
		}
	}
	return t, nil
}

// Routes returns the route suite for an ordered pair (nil if absent).
func (t *Table) Routes(i, j graph.NodeID) *RouteSet {
	if int(i) >= t.n || int(j) >= t.n || i < 0 || j < 0 {
		return nil
	}
	return t.sets[int(i)*t.n+int(j)]
}

// Graph returns the topology the table was built over.
func (t *Table) Graph() *graph.Graph { return t.g }

// SelectPrimary returns the call's primary path: the unique primary when the
// SI rule is single-valued, otherwise a deterministic weighted draw keyed by
// the call ID, so every policy sharing the selector seed assigns the same
// primary to the same call.
func (t *Table) SelectPrimary(c sim.Call) paths.Path {
	rs := t.Routes(c.Origin, c.Dest)
	if rs == nil || len(rs.Primaries) == 0 {
		return paths.Path{}
	}
	if len(rs.Primaries) == 1 {
		return rs.Primaries[0].Path
	}
	u := xrand.Uniform01(t.selectorSeed, int64(c.ID))
	acc := 0.0
	for _, wp := range rs.Primaries {
		acc += wp.Weight
		if u < acc {
			return wp.Path
		}
	}
	return rs.Primaries[len(rs.Primaries)-1].Path
}

// alternatesFor returns the alternates to try for a call whose selected
// primary is prim: the pair's alternate list, plus — under bifurcated
// primaries — the pair's other primaries are *not* tried (the SI rule chose
// prim; remaining paths of the suite are genuine alternates only).
func (t *Table) alternatesFor(c sim.Call, prim paths.Path) []paths.Path {
	rs := t.Routes(c.Origin, c.Dest)
	if rs == nil {
		return nil
	}
	return rs.Alternates
}

// AlternatesOf returns the ordered alternate suite for the call's O-D pair
// (the paths a blocked call attempts, in order).
func (t *Table) AlternatesOf(c sim.Call) []paths.Path {
	return t.alternatesFor(c, paths.Path{})
}

// MaxHops returns the table's H parameter (maximum alternate hop length).
func (t *Table) MaxHops() int { return t.MaxAltHops }
