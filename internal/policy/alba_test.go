package policy

import (
	"testing"

	"repro/internal/erlang"
	"repro/internal/netmodel"
	"repro/internal/sim"
	"repro/internal/traffic"
)

func TestLeastBusyPicksEmptiestAlternate(t *testing.T) {
	g := netmodel.Quadrangle()
	tbl, err := BuildMinHop(g, 2) // two-hop alternates only, like classic ALBA
	if err != nil {
		t.Fatal(err)
	}
	pol := LeastBusyAlternate{T: tbl}
	s := sim.NewState(g)
	c := sim.Call{ID: 0, Origin: 0, Dest: 1}
	// Fill direct link; load the via-2 alternate more than via-3.
	occupyDirect(t, g, s, 0, 1, 100)
	occupyDirect(t, g, s, 0, 2, 60)
	occupyDirect(t, g, s, 0, 3, 20)
	p, alt, ok := pol.Route(s, c)
	if !ok || !alt {
		t.Fatalf("route failed: %v %v %v", p, alt, ok)
	}
	if p.String() != "0→3→1" {
		t.Errorf("picked %s, want the least busy 0→3→1", p)
	}
	// Protection respected: with r=50 on every link, the 0→3 leg (occ 20,
	// free 80) is admissible but the 0→2 leg (occ 60 > C−r−1=49) is not.
	rs := make([]int, g.NumLinks())
	for i := range rs {
		rs[i] = 50
	}
	prot := LeastBusyAlternate{T: tbl, R: rs}
	p, _, ok = prot.Route(s, c)
	if !ok || p.String() != "0→3→1" {
		t.Errorf("protected route %v ok=%v", p, ok)
	}
	// Push 0→3 into the protected band too: blocked.
	occupyDirect(t, g, s, 0, 3, 40)
	if _, _, ok := prot.Route(s, c); ok {
		t.Error("all alternates protected: must block")
	}
	if pol.Name() != "least-busy-alternate" {
		t.Error("bad name")
	}
}

// TestLeastBusyVsShortestFirstOnQuadrangle is the ablation: on the
// fully-connected quadrangle with 2-hop alternates and Equation-15
// protection, least-busy selection should perform comparably to (typically
// a hair better than) shortest-first, and both must stay at or below
// single-path blocking.
func TestLeastBusyVsShortestFirstOnQuadrangle(t *testing.T) {
	g := netmodel.Quadrangle()
	load := 92.0
	m := traffic.Uniform(4, load)
	tbl, err := BuildMinHop(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	r := erlang.ProtectionLevel(load, 100, 2)
	rs := make([]int, g.NumLinks())
	for i := range rs {
		rs[i] = r
	}
	ctrl := Controlled{T: tbl, R: rs}
	alba := LeastBusyAlternate{T: tbl, R: rs}
	single := SinglePath{T: tbl}
	var blk [3]int64
	var off int64
	for seed := int64(0); seed < 5; seed++ {
		tr := sim.GenerateTrace(m, 110, seed)
		for i, pol := range []sim.Policy{single, ctrl, alba} {
			res, err := sim.Run(sim.Config{Graph: g, Policy: pol, Trace: tr, Warmup: 10})
			if err != nil {
				t.Fatal(err)
			}
			blk[i] += res.Blocked
			if i == 0 {
				off += res.Offered
			}
		}
	}
	slack := off / 500
	if blk[1] > blk[0]+slack {
		t.Errorf("controlled (%d) worse than single-path (%d)", blk[1], blk[0])
	}
	if blk[2] > blk[0]+slack {
		t.Errorf("least-busy (%d) worse than single-path (%d)", blk[2], blk[0])
	}
	// The two overflow-selection rules should be within a small band of each
	// other on this symmetric network.
	diff := blk[1] - blk[2]
	if diff < 0 {
		diff = -diff
	}
	if diff > off/50 {
		t.Errorf("shortest-first (%d) and least-busy (%d) differ too much", blk[1], blk[2])
	}
}
