package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 {
		t.Errorf("Summary = %+v", s)
	}
	if math.Abs(s.StdDev-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("StdDev = %v, want sqrt(2.5)", s.StdDev)
	}
	want := 1.96 * math.Sqrt(2.5) / math.Sqrt(5)
	if math.Abs(s.HalfWidth95-want) > 1e-12 {
		t.Errorf("HalfWidth95 = %v, want %v", s.HalfWidth95, want)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.StdDev != 0 || s.HalfWidth95 != 0 || s.Min != 7 || s.Max != 7 {
		t.Errorf("Summary = %+v", s)
	}
}

func TestSummarizePanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Summarize(nil)
}

func TestSkewness(t *testing.T) {
	if got := Skewness([]float64{1, 2, 3}); math.Abs(got) > 1e-12 {
		t.Errorf("symmetric sample skewness = %v", got)
	}
	if got := Skewness([]float64{1, 1, 1, 10}); got <= 0 {
		t.Errorf("right-tailed sample skewness = %v, want > 0", got)
	}
	if got := Skewness([]float64{-10, 1, 1, 1}); got >= 0 {
		t.Errorf("left-tailed sample skewness = %v, want < 0", got)
	}
	if got := Skewness([]float64{5, 5}); got != 0 {
		t.Errorf("short sample skewness = %v, want 0", got)
	}
	if got := Skewness([]float64{2, 2, 2, 2}); got != 0 {
		t.Errorf("constant sample skewness = %v, want 0", got)
	}
}

func TestCoefficientOfVariation(t *testing.T) {
	if got := CoefficientOfVariation([]float64{4, 4, 4}); got != 0 {
		t.Errorf("constant CV = %v", got)
	}
	got := CoefficientOfVariation([]float64{1, 3})
	if math.Abs(got-0.5) > 1e-12 {
		t.Errorf("CV = %v, want 0.5", got)
	}
	if CoefficientOfVariation(nil) != 0 {
		t.Error("empty CV should be 0")
	}
	if CoefficientOfVariation([]float64{-1, 1}) != 0 {
		t.Error("zero-mean CV should be 0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 4 {
		t.Errorf("q1 = %v", got)
	}
	if got := Quantile(xs, 0.5); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("median = %v, want 2.5", got)
	}
	if got := Quantile([]float64{9}, 0.3); got != 9 {
		t.Errorf("singleton quantile = %v", got)
	}
	// Input must not be mutated (sorted copy).
	if xs[0] != 3 {
		t.Error("Quantile mutated its input")
	}
}

func TestQuantilePanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("empty", func() { Quantile(nil, 0.5) })
	mustPanic("bad q", func() { Quantile([]float64{1}, 1.5) })
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(seed uint32) bool {
		xs := make([]float64, 1+seed%20)
		s := seed
		for i := range xs {
			s = s*1664525 + 1013904223
			xs[i] = float64(s % 1000)
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(xs, q)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
