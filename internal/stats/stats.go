// Package stats provides the summary statistics used to report the paper's
// experiments: means with normal-approximation confidence intervals over
// simulation seeds, and distribution-shape measures (skewness, spread) for
// the per-O-D-pair blocking fairness study of §4.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample of replicated measurements.
type Summary struct {
	N            int
	Mean, StdDev float64
	Min, Max     float64
	// HalfWidth95 is the half-width of the normal-approximation 95%
	// confidence interval of the mean.
	HalfWidth95 float64
}

// Summarize computes a Summary; it panics on an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic(fmt.Errorf("stats: empty sample"))
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(len(xs)-1))
		s.HalfWidth95 = 1.96 * s.StdDev / math.Sqrt(float64(len(xs)))
	}
	return s
}

// Skewness returns the adjusted Fisher–Pearson sample skewness; zero for
// samples of fewer than 3 points or with zero variance.
func Skewness(xs []float64) float64 {
	n := float64(len(xs))
	if n < 3 {
		return 0
	}
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= n
	m2, m3 := 0.0, 0.0
	for _, x := range xs {
		d := x - mean
		m2 += d * d
		m3 += d * d * d
	}
	m2 /= n
	m3 /= n
	if m2 == 0 {
		return 0
	}
	g1 := m3 / math.Pow(m2, 1.5)
	return g1 * math.Sqrt(n*(n-1)) / (n - 2)
}

// CoefficientOfVariation returns stddev/mean (population stddev), a scale-
// free spread measure; zero when the mean is zero.
func CoefficientOfVariation(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if mean == 0 {
		return 0
	}
	ss := 0.0
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return math.Sqrt(ss/float64(len(xs))) / mean
}

// Quantile returns the q-quantile (0 <= q <= 1) by linear interpolation of
// the sorted sample; it panics on an empty sample or q outside [0,1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic(fmt.Errorf("stats: empty sample"))
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		panic(fmt.Errorf("stats: quantile %v outside [0,1]", q))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
