package exact

import (
	"math"
	"testing"

	"repro/internal/erlang"
	"repro/internal/graph"
	"repro/internal/netmodel"
	"repro/internal/paths"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/traffic"
)

// admitPrimaryOnly admits only route 0 (the primary) with plain capacity.
func admitPrimaryOnly(r int, _ paths.Path, _ []int) bool { return r == 0 }

// admitAll admits any route with plain capacity (uncontrolled).
func admitAll(int, paths.Path, []int) bool { return true }

// admitControlled builds the paper's rule: primaries always, alternates only
// while every link stays below C−r.
func admitControlled(g *graph.Graph, prot []int) Admission {
	return func(ri int, route paths.Path, occ []int) bool {
		if ri == 0 {
			return true
		}
		for _, id := range route.Links {
			c := g.Link(id).Capacity
			if occ[id] > c-prot[id]-1 {
				return false
			}
		}
		return true
	}
}

func TestSolveSingleLinkErlangB(t *testing.T) {
	g := graph.New()
	a := g.AddNode("a")
	b := g.AddNode("b")
	id := g.MustAddLink(a, b, 4)
	route := paths.Path{Nodes: []graph.NodeID{a, b}, Links: []graph.LinkID{id}}
	for _, rate := range []float64{0.5, 2, 4, 8} {
		res, err := Solve(Model{
			Graph:   g,
			Demands: []Demand{{Origin: a, Dest: b, Rate: rate, Routes: []paths.Path{route}}},
			Admit:   admitPrimaryOnly,
		}, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := erlang.B(rate, 4)
		if math.Abs(res.Blocking-want) > 1e-9 {
			t.Errorf("rate %v: exact blocking %v, Erlang-B %v", rate, res.Blocking, want)
		}
		if res.States != 5 {
			t.Errorf("states = %d, want 5", res.States)
		}
	}
}

// triangleModel builds a 3-node duplex triangle with capacity c and a
// demand for every ordered pair at the given rate, each with its direct
// primary and the 2-hop alternate — so alternate-routed calls compete with
// other pairs' primaries, as in the paper's networks.
func triangleModel(t *testing.T, c int, rate float64, admit func(g *graph.Graph) Admission) (Model, *graph.Graph) {
	t.Helper()
	g := netmodel.Complete(3, c)
	var demands []Demand
	for o := graph.NodeID(0); o < 3; o++ {
		for d := graph.NodeID(0); d < 3; d++ {
			if o == d {
				continue
			}
			prim, ok := paths.MinHop(g, o, d)
			if !ok {
				t.Fatal("no primary")
			}
			alts := paths.Alternates(g, o, d, prim, 2)
			if len(alts) != 1 {
				t.Fatalf("triangle should have one 2-hop alternate, got %d", len(alts))
			}
			demands = append(demands, Demand{Origin: o, Dest: d, Rate: rate, Routes: []paths.Path{prim, alts[0]}})
		}
	}
	return Model{Graph: g, Demands: demands, Admit: admit(g)}, g
}

func TestSolveTriangleSinglePathExact(t *testing.T) {
	// Single-path on the triangle: each demand sees an independent M/M/C/C.
	m, _ := triangleModel(t, 3, 2.4, func(*graph.Graph) Admission { return admitPrimaryOnly })
	res, err := Solve(m, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := erlang.B(2.4, 3)
	for d, b := range res.BlockingByDemand {
		if math.Abs(b-want) > 1e-9 {
			t.Errorf("demand %d blocking %v, want %v", d, b, want)
		}
	}
}

// TestTheorem1GuaranteeExact is the rigorous form of the paper's headline
// claim: with protection levels from Equation 15 (H=2 here), the exact
// acceptance rate of controlled alternate routing is >= that of single-path
// routing, across light, critical and overloaded regimes.
func TestTheorem1GuaranteeExact(t *testing.T) {
	const c = 3
	for _, rate := range []float64{1, 2.5, 3, 4, 6, 9} {
		r := erlang.ProtectionLevel(rate, c, 2)
		prot := make([]int, 6)
		for i := range prot {
			prot[i] = r
		}
		mSingle, _ := triangleModel(t, c, rate, func(*graph.Graph) Admission { return admitPrimaryOnly })
		mCtrl, _ := triangleModel(t, c, rate, func(g *graph.Graph) Admission { return admitControlled(g, prot) })
		single, err := Solve(mSingle, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		ctrl, err := Solve(mCtrl, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if ctrl.AcceptanceRate < single.AcceptanceRate-1e-9 {
			t.Errorf("rate %v (r=%d): controlled acceptance %.9f < single-path %.9f",
				rate, r, ctrl.AcceptanceRate, single.AcceptanceRate)
		}
	}
}

// TestUncontrolledAvalancheExact shows — exactly — the §1 pathology: at
// overload, uncontrolled alternate routing accepts fewer calls than
// single-path routing because alternates consume two links per call.
func TestUncontrolledAvalancheExact(t *testing.T) {
	const c = 3
	mSingle, _ := triangleModel(t, c, 9, func(*graph.Graph) Admission { return admitPrimaryOnly })
	mUnc, _ := triangleModel(t, c, 9, func(*graph.Graph) Admission { return admitAll })
	single, err := Solve(mSingle, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	unc, err := Solve(mUnc, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if unc.AcceptanceRate >= single.AcceptanceRate {
		t.Errorf("overload: uncontrolled acceptance %.6f should drop below single-path %.6f",
			unc.AcceptanceRate, single.AcceptanceRate)
	}
	// And at light load uncontrolled helps.
	mSingleL, _ := triangleModel(t, c, 1.0, func(*graph.Graph) Admission { return admitPrimaryOnly })
	mUncL, _ := triangleModel(t, c, 1.0, func(*graph.Graph) Admission { return admitAll })
	singleL, err := Solve(mSingleL, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	uncL, err := Solve(mUncL, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if uncL.AcceptanceRate <= singleL.AcceptanceRate {
		t.Errorf("light load: uncontrolled acceptance %.6f should exceed single-path %.6f",
			uncL.AcceptanceRate, singleL.AcceptanceRate)
	}
}

// TestExactMatchesSimulation cross-validates the two engines on the
// uncontrolled triangle.
func TestExactMatchesSimulation(t *testing.T) {
	const c = 3
	rate := 2.5
	mUnc, g := triangleModel(t, c, rate, func(*graph.Graph) Admission { return admitAll })
	exactRes, err := Solve(mUnc, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	tm := traffic.Uniform(3, rate)
	tbl, err := policy.BuildMinHop(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	var blocked, offered int64
	for seed := int64(0); seed < 10; seed++ {
		tr := sim.GenerateTrace(tm, 510, seed)
		res, err := sim.Run(sim.Config{Graph: g, Policy: policy.Uncontrolled{T: tbl}, Trace: tr, Warmup: 10})
		if err != nil {
			t.Fatal(err)
		}
		blocked += res.Blocked
		offered += res.Offered
	}
	simulated := float64(blocked) / float64(offered)
	if math.Abs(simulated-exactRes.Blocking) > 0.01 {
		t.Errorf("simulated %v vs exact %v", simulated, exactRes.Blocking)
	}
}

func TestSolveValidation(t *testing.T) {
	g := netmodel.Complete(3, 2)
	if _, err := Solve(Model{}, 0, 0); err == nil {
		t.Error("empty model: want error")
	}
	prim, _ := paths.MinHop(g, 0, 1)
	if _, err := Solve(Model{
		Graph:   g,
		Demands: []Demand{{Rate: -1, Routes: []paths.Path{prim}}},
		Admit:   admitAll,
	}, 0, 0); err == nil {
		t.Error("negative rate: want error")
	}
	// State-space cap.
	m, _ := triangleModel(t, 2, 1, func(*graph.Graph) Admission { return admitAll })
	if _, err := Solve(m, 3, 0); err == nil {
		t.Error("tiny maxStates: want error")
	}
	// Invalid route.
	bad := prim.Clone()
	bad.Nodes[1] = 2
	if _, err := Solve(Model{
		Graph:   g,
		Demands: []Demand{{Rate: 1, Routes: []paths.Path{bad}}},
		Admit:   admitAll,
	}, 0, 0); err == nil {
		t.Error("invalid route: want error")
	}
}
