// Package exact computes the exact stationary behaviour of small
// alternate-routing loss networks by enumerating the continuous-time Markov
// chain over per-route call counts and solving for its stationary
// distribution. Simulation estimates are statistical; this solver verifies
// the paper's Theorem-1 guarantee — controlled alternate routing never
// accepts fewer calls than single-path routing — to numerical precision on
// paper-scale toy networks (triangles, small capacities), and cross-checks
// the simulator.
package exact

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/paths"
)

// Demand is one O-D pair's offered stream and its ordered route attempts
// (primary first).
type Demand struct {
	Origin, Dest graph.NodeID
	Rate         float64
	Routes       []paths.Path
}

// Admission decides whether route r (index into the demand's Routes) may be
// used in the current per-link occupancy; the solver tries routes in order
// and uses the first admitted one.
type Admission func(routeIdx int, route paths.Path, occ []int) bool

// Model is a fully specified small loss network.
type Model struct {
	Graph   *graph.Graph
	Demands []Demand
	Admit   Admission
}

// Result is the exact stationary solution.
type Result struct {
	// States is the number of reachable CTMC states.
	States int
	// BlockingByDemand is the exact probability an arriving call of demand
	// d finds every admitted route refused (PASTA).
	BlockingByDemand []float64
	// Blocking is the rate-weighted network blocking.
	Blocking float64
	// AcceptanceRate is the long-run accepted calls per unit time.
	AcceptanceRate float64
}

// stateKey encodes per-(demand, route) counts compactly.
type stateKey string

func encode(counts []uint8) stateKey { return stateKey(counts) }

// Solve enumerates the reachable state space and computes the stationary
// distribution by power iteration on the uniformized chain. maxStates
// guards against explosion (0 means 200000); tol is the convergence
// criterion on the L1 change per sweep (0 means 1e-12).
func Solve(m Model, maxStates int, tol float64) (*Result, error) {
	if m.Graph == nil || m.Admit == nil || len(m.Demands) == 0 {
		return nil, fmt.Errorf("exact: incomplete model")
	}
	if maxStates <= 0 {
		maxStates = 200000
	}
	if tol <= 0 {
		tol = 1e-12
	}
	nRoutes := 0
	routeOf := make([][2]int, 0) // flat index -> (demand, route)
	base := make([]int, len(m.Demands))
	for d, dem := range m.Demands {
		if dem.Rate < 0 {
			return nil, fmt.Errorf("exact: demand %d rate %v", d, dem.Rate)
		}
		base[d] = nRoutes
		for r := range dem.Routes {
			if err := paths.Validate(m.Graph, dem.Routes[r]); err != nil {
				return nil, fmt.Errorf("exact: demand %d route %d: %w", d, r, err)
			}
			routeOf = append(routeOf, [2]int{d, r})
			nRoutes++
		}
	}
	caps := make([]int, m.Graph.NumLinks())
	for i := range caps {
		caps[i] = m.Graph.Link(graph.LinkID(i)).Capacity
		if caps[i] > 255 {
			return nil, fmt.Errorf("exact: capacity %d exceeds the uint8 count encoding", caps[i])
		}
	}

	occupancy := func(counts []uint8) []int {
		occ := make([]int, len(caps))
		for flat, c := range counts {
			if c == 0 {
				continue
			}
			d, r := routeOf[flat][0], routeOf[flat][1]
			for _, id := range m.Demands[d].Routes[r].Links {
				occ[id] += int(c)
			}
		}
		return occ
	}
	fits := func(occ []int, route paths.Path) bool {
		for _, id := range route.Links {
			if occ[id]+1 > caps[id] {
				return false
			}
		}
		return true
	}
	// chooseRoute returns the admitted route index or -1.
	chooseRoute := func(d int, occ []int) int {
		for r, route := range m.Demands[d].Routes {
			if !fits(occ, route) {
				continue
			}
			if m.Admit(r, route, occ) {
				return r
			}
		}
		return -1
	}

	// Enumerate reachable states by BFS from empty.
	index := map[stateKey]int{}
	var states [][]uint8
	empty := make([]uint8, nRoutes)
	index[encode(empty)] = 0
	states = append(states, empty)
	add := func(next []uint8) error {
		key := encode(next)
		if _, seen := index[key]; !seen {
			if len(states) >= maxStates {
				return fmt.Errorf("exact: state space exceeds %d", maxStates)
			}
			index[key] = len(states)
			states = append(states, next)
		}
		return nil
	}
	// Close the reachable set under both arrivals and departures: with a
	// state-dependent policy, departure interleavings reach count vectors
	// that no pure arrival sequence produces (e.g. an alternate-routed call
	// outliving the congestion that caused it).
	for head := 0; head < len(states); head++ {
		cur := states[head]
		occ := occupancy(cur)
		for d := range m.Demands {
			if m.Demands[d].Rate == 0 {
				continue
			}
			r := chooseRoute(d, occ)
			if r < 0 {
				continue
			}
			next := append([]uint8(nil), cur...)
			next[base[d]+r]++
			if err := add(next); err != nil {
				return nil, err
			}
		}
		for flat, c := range cur {
			if c == 0 {
				continue
			}
			next := append([]uint8(nil), cur...)
			next[flat]--
			if err := add(next); err != nil {
				return nil, err
			}
		}
	}

	// Uniformization constant: max total rate = Σ rates + max total calls.
	totalRate := 0.0
	for _, dem := range m.Demands {
		totalRate += dem.Rate
	}
	maxCalls := 0
	for _, st := range states {
		calls := 0
		for _, c := range st {
			calls += int(c)
		}
		if calls > maxCalls {
			maxCalls = calls
		}
	}
	u := totalRate + float64(maxCalls) + 1

	// Precompute transitions per state.
	type transition struct {
		to   int
		prob float64
	}
	trans := make([][]transition, len(states))
	for si, st := range states {
		occ := occupancy(st)
		var ts []transition
		stay := u
		for d := range m.Demands {
			rate := m.Demands[d].Rate
			if rate == 0 {
				continue
			}
			r := chooseRoute(d, occ)
			if r < 0 {
				continue // blocked: self-loop, stays in `stay`
			}
			next := append([]uint8(nil), st...)
			next[base[d]+r]++
			ts = append(ts, transition{to: index[encode(next)], prob: rate / u})
			stay -= rate
		}
		for flat, c := range st {
			if c == 0 {
				continue
			}
			next := append([]uint8(nil), st...)
			next[flat]--
			ni, seen := index[encode(next)]
			if !seen {
				// A departure can reach a state never produced by arrivals
				// (different interleavings); add it lazily is impossible
				// here — but BFS above only follows arrivals, so guard.
				return nil, fmt.Errorf("exact: departure reached unenumerated state")
			}
			ts = append(ts, transition{to: ni, prob: float64(c) / u})
			stay -= float64(c)
		}
		ts = append(ts, transition{to: si, prob: stay / u})
		trans[si] = ts
	}

	// Power iteration.
	pi := make([]float64, len(states))
	next := make([]float64, len(states))
	pi[0] = 1
	for iter := 0; iter < 200000; iter++ {
		for i := range next {
			next[i] = 0
		}
		for si, ts := range trans {
			p := pi[si]
			if p == 0 {
				continue
			}
			for _, t := range ts {
				next[t.to] += p * t.prob
			}
		}
		delta := 0.0
		for i := range next {
			delta += math.Abs(next[i] - pi[i])
		}
		pi, next = next, pi
		if delta < tol {
			break
		}
	}

	res := &Result{States: len(states), BlockingByDemand: make([]float64, len(m.Demands))}
	var lostRate, accRate float64
	for si, st := range states {
		occ := occupancy(st)
		for d := range m.Demands {
			rate := m.Demands[d].Rate
			if rate == 0 {
				continue
			}
			if chooseRoute(d, occ) < 0 {
				res.BlockingByDemand[d] += pi[si]
				lostRate += rate * pi[si]
			} else {
				accRate += rate * pi[si]
			}
		}
	}
	if totalRate > 0 {
		res.Blocking = lostRate / totalRate
	}
	res.AcceptanceRate = accRate
	return res, nil
}
