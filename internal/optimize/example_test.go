package optimize_test

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/optimize"
	"repro/internal/traffic"
)

// Min-loss SI primary selection bifurcates when the min-hop path saturates:
// 30 Erlangs offered to a capacity-20 direct link split between the direct
// link and an ample 2-hop detour.
func ExampleMinLossPrimaries() {
	g := graph.New()
	g.AddNodes(3)
	g.MustAddLink(0, 1, 20)
	g.MustAddLink(1, 0, 20)
	g.MustAddLink(0, 2, 100)
	g.MustAddLink(2, 0, 100)
	g.MustAddLink(2, 1, 100)
	g.MustAddLink(1, 2, 100)
	m := traffic.NewMatrix(3)
	m.SetDemand(0, 1, 30)

	res, err := optimize.MinLossPrimaries(g, m, optimize.Options{})
	if err != nil {
		panic(err)
	}
	wps := res.Primaries[[2]graph.NodeID{0, 1}]
	fmt.Printf("primaries: %d (bifurcated: %v)\n", len(wps), len(wps) > 1)
	// Output:
	// primaries: 2 (bifurcated: true)
}
