// Package optimize implements the min-loss state-independent primary-path
// selection of §4 ("Primary paths chosen to minimize link loss"): primaries
// are chosen to minimize the expected total lost-call rate Σ_k λ_k·B(λ_k,C_k)
// under the independent-link assumption, where λ_k is the (fractional)
// primary flow on link k. The cost is convex in the flows (Krishnan 1990),
// and the paper minimizes it with an iterative gradient method producing
// bifurcated primary flows; we use the classical flow-deviation
// (Frank–Wolfe) algorithm: linearize at the current flows, route each pair's
// demand entirely onto its current cheapest path, and take the best convex
// combination by golden-section line search.
package optimize

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"repro/internal/erlang"
	"repro/internal/graph"
	"repro/internal/paths"
	"repro/internal/policy"
	"repro/internal/traffic"
)

// Options tunes the solver.
type Options struct {
	// MaxIterations bounds Frank–Wolfe steps (default 200).
	MaxIterations int
	// Tolerance stops when the relative cost improvement of a step falls
	// below it (default 1e-7).
	Tolerance float64
	// MinFraction prunes primary paths carrying less than this fraction of
	// a pair's demand from the final bifurcated routing (default 1e-3).
	MinFraction float64
}

// Result is the optimized bifurcated primary routing.
type Result struct {
	// Primaries maps each ordered pair to its weighted primary paths
	// (weights sum to 1).
	Primaries map[[2]graph.NodeID][]policy.WeightedPath
	// LinkLoads is the optimized expected primary flow per link.
	LinkLoads []float64
	// Cost is the minimized expected lost-call rate Σ λ_k·B(λ_k, C_k).
	Cost float64
	// Iterations actually performed.
	Iterations int
}

// LossRate evaluates the objective for a load vector.
func LossRate(g *graph.Graph, loads []float64) float64 {
	total := 0.0
	for id, l := range loads {
		if l <= 0 {
			continue
		}
		total += l * erlang.B(l, g.Link(graph.LinkID(id)).Capacity)
	}
	return total
}

// lossDerivative returns d/dλ [λ·B(λ,C)] = B + λ·B', with B' computed by
// differentiating the Erlang-B recursion.
func lossDerivative(load float64, capacity int) float64 {
	if load <= 0 {
		// lim_{λ→0} d/dλ λB(λ,C) = B(0,C), which is 0 for C >= 1, 1 for C=0.
		if capacity == 0 {
			return 1
		}
		return 0
	}
	b, db := 1.0, 0.0
	for c := 1; c <= capacity; c++ {
		u := load * b
		du := b + load*db
		den := float64(c) + u
		bNew := u / den
		dbNew := float64(c) * du / (den * den)
		b, db = bNew, dbNew
	}
	return b + load*db
}

// MinLossPrimaries computes bifurcated min-loss primaries for the matrix.
func MinLossPrimaries(g *graph.Graph, m *traffic.Matrix, opts Options) (*Result, error) {
	if g.NumNodes() != m.Size() {
		return nil, fmt.Errorf("optimize: matrix size %d for %d nodes", m.Size(), g.NumNodes())
	}
	if opts.MaxIterations <= 0 {
		opts.MaxIterations = 200
	}
	if opts.Tolerance <= 0 {
		opts.Tolerance = 1e-7
	}
	if opts.MinFraction <= 0 {
		opts.MinFraction = 1e-3
	}
	n := g.NumNodes()

	// Per-pair path flows, keyed by path string.
	type flowEntry struct {
		path paths.Path
		flow float64
	}
	flows := make(map[[2]graph.NodeID]map[string]*flowEntry)

	// Initialize: everything on the min-hop path.
	for i := graph.NodeID(0); int(i) < n; i++ {
		for j := graph.NodeID(0); int(j) < n; j++ {
			if i == j || m.Demand(i, j) == 0 {
				continue
			}
			p, ok := paths.MinHop(g, i, j)
			if !ok {
				return nil, fmt.Errorf("optimize: no path %d→%d", i, j)
			}
			flows[[2]graph.NodeID{i, j}] = map[string]*flowEntry{
				p.String(): {path: p, flow: m.Demand(i, j)},
			}
		}
	}

	// Every accumulation below walks the pairs (and each pair's paths) in
	// sorted order, never map order: the per-link float sums and the final
	// weighted-path slices must be bit-identical from run to run. The pair
	// set is fixed after initialization, so the sorted index is built once.
	pairs := make([][2]graph.NodeID, 0, len(flows))
	for pair := range flows {
		pairs = append(pairs, pair)
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a][0] != pairs[b][0] {
			return pairs[a][0] < pairs[b][0]
		}
		return pairs[a][1] < pairs[b][1]
	})
	sortedEntries := func(perPair map[string]*flowEntry) []*flowEntry {
		keys := make([]string, 0, len(perPair))
		for k := range perPair {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		out := make([]*flowEntry, len(keys))
		for i, k := range keys {
			out[i] = perPair[k]
		}
		return out
	}

	linkLoads := func() []float64 {
		loads := make([]float64, g.NumLinks())
		for _, pair := range pairs {
			for _, fe := range sortedEntries(flows[pair]) {
				for _, id := range fe.path.Links {
					loads[id] += fe.flow
				}
			}
		}
		return loads
	}

	loads := linkLoads()
	cost := LossRate(g, loads)
	iter := 0
	for ; iter < opts.MaxIterations; iter++ {
		// Linearize: marginal cost per link.
		w := make([]float64, g.NumLinks())
		for id := range w {
			w[id] = lossDerivative(loads[id], g.Link(graph.LinkID(id)).Capacity)
		}
		// All-or-nothing assignment on cheapest paths.
		target := make([]float64, g.NumLinks())
		aonPaths := make(map[[2]graph.NodeID]paths.Path, len(flows))
		for _, pair := range pairs {
			p, ok := cheapestPath(g, pair[0], pair[1], w)
			if !ok {
				return nil, fmt.Errorf("optimize: no path %d→%d", pair[0], pair[1])
			}
			aonPaths[pair] = p
			d := m.Demand(pair[0], pair[1])
			for _, id := range p.Links {
				target[id] += d
			}
		}
		// Golden-section line search on γ ∈ [0,1].
		blend := func(gamma float64) []float64 {
			out := make([]float64, len(loads))
			for id := range out {
				out[id] = (1-gamma)*loads[id] + gamma*target[id]
			}
			return out
		}
		gamma := goldenSection(func(gmm float64) float64 {
			return LossRate(g, blend(gmm))
		}, 0, 1, 48)
		newCost := LossRate(g, blend(gamma))
		if newCost > cost-opts.Tolerance*math.Max(cost, 1e-12) || gamma == 0 {
			break
		}
		// Apply the step to path flows.
		for _, pair := range pairs {
			perPair := flows[pair]
			for _, fe := range perPair {
				fe.flow *= 1 - gamma
			}
			p := aonPaths[pair]
			key := p.String()
			if fe, ok := perPair[key]; ok {
				fe.flow += gamma * m.Demand(pair[0], pair[1])
			} else {
				perPair[key] = &flowEntry{path: p, flow: gamma * m.Demand(pair[0], pair[1])}
			}
		}
		loads = linkLoads()
		cost = LossRate(g, loads)
	}

	// Extract weighted primaries, pruning negligible fractions.
	res := &Result{
		Primaries:  make(map[[2]graph.NodeID][]policy.WeightedPath, len(flows)),
		LinkLoads:  loads,
		Cost:       cost,
		Iterations: iter,
	}
	for _, pair := range pairs {
		d := m.Demand(pair[0], pair[1])
		var wps []policy.WeightedPath
		kept := 0.0
		for _, fe := range sortedEntries(flows[pair]) {
			frac := fe.flow / d
			if frac < opts.MinFraction {
				continue
			}
			wps = append(wps, policy.WeightedPath{Path: fe.path, Weight: frac})
			kept += frac
		}
		if len(wps) == 0 || kept <= 0 {
			return nil, fmt.Errorf("optimize: pair %v lost all flow", pair)
		}
		for k := range wps {
			wps[k].Weight /= kept
		}
		res.Primaries[pair] = wps
	}
	return res, nil
}

// cheapestPath is Dijkstra over up links with nonnegative weights,
// deterministic tie-breaking by node ID.
//
//altlint:float-ok nd == dist is the deterministic equal-cost tie-break, not an identity test
func cheapestPath(g *graph.Graph, src, dst graph.NodeID, w []float64) (paths.Path, bool) {
	n := g.NumNodes()
	dist := make([]float64, n)
	prevLink := make([]graph.LinkID, n)
	visited := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prevLink[i] = graph.InvalidLink
	}
	dist[src] = 0
	pq := &nodeHeap{{node: src, dist: 0}}
	for pq.Len() > 0 {
		item := heap.Pop(pq).(nodeItem)
		v := item.node
		if visited[v] {
			continue
		}
		visited[v] = true
		if v == dst {
			break
		}
		for _, id := range g.Out(v) {
			l := g.Link(id)
			if l.Down || visited[l.To] {
				continue
			}
			nd := dist[v] + w[id]
			if nd < dist[l.To] || (nd == dist[l.To] && prevLink[l.To] != graph.InvalidLink && l.From < g.Link(prevLink[l.To]).From) {
				dist[l.To] = nd
				prevLink[l.To] = id
				heap.Push(pq, nodeItem{node: l.To, dist: nd})
			}
		}
	}
	if math.IsInf(dist[dst], 1) {
		return paths.Path{}, false
	}
	// Reconstruct.
	var rlinks []graph.LinkID
	var rnodes []graph.NodeID
	cur := dst
	rnodes = append(rnodes, cur)
	for cur != src {
		id := prevLink[cur]
		rlinks = append(rlinks, id)
		cur = g.Link(id).From
		rnodes = append(rnodes, cur)
	}
	// Reverse.
	for i, j := 0, len(rlinks)-1; i < j; i, j = i+1, j-1 {
		rlinks[i], rlinks[j] = rlinks[j], rlinks[i]
	}
	for i, j := 0, len(rnodes)-1; i < j; i, j = i+1, j-1 {
		rnodes[i], rnodes[j] = rnodes[j], rnodes[i]
	}
	return paths.Path{Nodes: rnodes, Links: rlinks}, true
}

type nodeItem struct {
	node graph.NodeID
	dist float64
}

type nodeHeap []nodeItem

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(nodeItem)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// goldenSection minimizes f on [lo, hi] with the given iteration budget and
// returns the minimizing abscissa. f must be unimodal on the interval (true
// for convex objectives along a line segment).
func goldenSection(f func(float64) float64, lo, hi float64, iters int) float64 {
	const invPhi = 0.6180339887498949
	a, b := lo, hi
	c := b - (b-a)*invPhi
	d := a + (b-a)*invPhi
	fc, fd := f(c), f(d)
	for i := 0; i < iters; i++ {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - (b-a)*invPhi
			fc = f(c)
		} else {
			a, c, fc = c, d, fd
			d = a + (b-a)*invPhi
			fd = f(d)
		}
	}
	// Compare interior best against endpoints (minimum may be at γ=0 or 1).
	best, fbest := (a+b)/2, f((a+b)/2)
	for _, x := range []float64{lo, hi} {
		if fx := f(x); fx < fbest {
			best, fbest = x, fx
		}
	}
	return best
}
