package optimize

import (
	"math"
	"testing"

	"repro/internal/erlang"
	"repro/internal/graph"
	"repro/internal/netmodel"
	"repro/internal/traffic"
)

func TestLossDerivativeMatchesFiniteDifference(t *testing.T) {
	for _, load := range []float64{0.5, 10, 74, 120} {
		for _, c := range []int{1, 10, 100} {
			got := lossDerivative(load, c)
			h := 1e-5 * math.Max(load, 1)
			f := func(l float64) float64 { return l * erlang.B(l, c) }
			want := (f(load+h) - f(load-h)) / (2 * h)
			if math.Abs(got-want) > 1e-4*math.Max(math.Abs(want), 1e-6) && math.Abs(got-want) > 1e-8 {
				t.Errorf("f'(%v,%d) = %v, finite diff %v", load, c, got, want)
			}
		}
	}
	if got := lossDerivative(0, 5); got != 0 {
		t.Errorf("f'(0,5) = %v, want 0", got)
	}
	if got := lossDerivative(0, 0); got != 1 {
		t.Errorf("f'(0,0) = %v, want 1 (zero-capacity link loses everything)", got)
	}
}

func TestGoldenSection(t *testing.T) {
	got := goldenSection(func(x float64) float64 { return (x - 0.3) * (x - 0.3) }, 0, 1, 60)
	if math.Abs(got-0.3) > 1e-6 {
		t.Errorf("minimizer %v, want 0.3", got)
	}
	// Monotone decreasing: minimum at the right endpoint.
	got = goldenSection(func(x float64) float64 { return -x }, 0, 1, 60)
	if got != 1 {
		t.Errorf("minimizer %v, want 1", got)
	}
	// Monotone increasing: minimum at the left endpoint.
	got = goldenSection(func(x float64) float64 { return x }, 0, 1, 60)
	if got != 0 {
		t.Errorf("minimizer %v, want 0", got)
	}
}

func TestCheapestPathMatchesMinHopUnderUnitWeights(t *testing.T) {
	g := netmodel.NSFNet()
	w := make([]float64, g.NumLinks())
	for i := range w {
		w[i] = 1
	}
	for s := graph.NodeID(0); s < 12; s++ {
		for d := graph.NodeID(0); d < 12; d++ {
			if s == d {
				continue
			}
			p, ok := cheapestPath(g, s, d, w)
			if !ok {
				t.Fatalf("no path %d→%d", s, d)
			}
			mh, _ := minHopLen(g, s, d)
			if p.Hops() != mh {
				t.Errorf("%d→%d: Dijkstra %d hops, BFS %d", s, d, p.Hops(), mh)
			}
		}
	}
}

func minHopLen(g *graph.Graph, s, d graph.NodeID) (int, bool) {
	dist := map[graph.NodeID]int{s: 0}
	queue := []graph.NodeID{s}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if v == d {
			return dist[v], true
		}
		for _, id := range g.Out(v) {
			l := g.Link(id)
			if l.Down {
				continue
			}
			if _, seen := dist[l.To]; !seen {
				dist[l.To] = dist[v] + 1
				queue = append(queue, l.To)
			}
		}
	}
	return 0, false
}

func TestMinLossOnAsymmetricTriangle(t *testing.T) {
	// Two parallel routes 0→1: direct (tight capacity) and via 2 (ample).
	// Min-hop puts all 30 Erlangs on the capacity-20 direct link (heavy
	// loss); the optimizer must bifurcate and cut the loss substantially.
	g := graph.New()
	g.AddNodes(3)
	g.MustAddLink(0, 1, 20)
	g.MustAddLink(1, 0, 20)
	g.MustAddLink(0, 2, 100)
	g.MustAddLink(2, 0, 100)
	g.MustAddLink(2, 1, 100)
	g.MustAddLink(1, 2, 100)
	m := traffic.NewMatrix(3)
	m.SetDemand(0, 1, 30)

	res, err := MinLossPrimaries(g, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	naive := 30 * erlang.B(30, 20)
	if res.Cost >= naive/2 {
		t.Errorf("optimized cost %v not much below min-hop cost %v", res.Cost, naive)
	}
	wps := res.Primaries[[2]graph.NodeID{0, 1}]
	if len(wps) != 2 {
		t.Fatalf("expected bifurcation, got %d paths", len(wps))
	}
	wsum := 0.0
	for _, wp := range wps {
		if wp.Weight <= 0 || wp.Weight >= 1 {
			t.Errorf("degenerate weight %v", wp.Weight)
		}
		wsum += wp.Weight
	}
	if math.Abs(wsum-1) > 1e-9 {
		t.Errorf("weights sum to %v", wsum)
	}
	if res.Iterations == 0 {
		t.Error("optimizer did not iterate")
	}
}

func TestMinLossKeepsLightNetworkOnMinHop(t *testing.T) {
	// At trivial load there is nothing to gain: the min-hop solution is
	// already optimal (cost ≈ 0) and primaries stay single.
	g := netmodel.Quadrangle()
	m := traffic.Uniform(4, 5)
	res, err := MinLossPrimaries(g, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost > 1e-10 {
		t.Errorf("cost %v at negligible load", res.Cost)
	}
	for pair, wps := range res.Primaries {
		if len(wps) != 1 || wps[0].Path.Hops() != 1 {
			t.Errorf("pair %v: unexpected bifurcation %v", pair, wps)
		}
	}
}

func TestMinLossNSFNetImprovesOnMinHop(t *testing.T) {
	g := netmodel.NSFNet()
	m, pr, err := traffic.NSFNetNominal()
	if err != nil {
		t.Fatal(err)
	}
	minHopCost := LossRate(g, traffic.LinkLoads(g, m, pr))
	res, err := MinLossPrimaries(g, m, Options{MaxIterations: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost >= minHopCost {
		t.Errorf("optimized cost %v >= min-hop cost %v", res.Cost, minHopCost)
	}
	// The overloaded links (Λ>C at nominal) force genuine bifurcation
	// somewhere.
	bifurcated := 0
	for _, wps := range res.Primaries {
		if len(wps) > 1 {
			bifurcated++
		}
	}
	if bifurcated == 0 {
		t.Error("expected bifurcated primaries on the overloaded NSFNet")
	}
	// Link loads from the result must equal recomputing from primaries.
	loads := make([]float64, g.NumLinks())
	for pair, wps := range res.Primaries {
		d := m.Demand(pair[0], pair[1])
		for _, wp := range wps {
			for _, id := range wp.Path.Links {
				loads[id] += d * wp.Weight
			}
		}
	}
	for id := range loads {
		// Pruning MinFraction reweights pairs slightly; allow 1% slack.
		if math.Abs(loads[id]-res.LinkLoads[id]) > 0.01*math.Max(res.LinkLoads[id], 1) {
			t.Errorf("link %d: recomputed %v vs reported %v", id, loads[id], res.LinkLoads[id])
		}
	}
}

func TestMinLossErrors(t *testing.T) {
	g := netmodel.Quadrangle()
	if _, err := MinLossPrimaries(g, traffic.NewMatrix(3), Options{}); err == nil {
		t.Error("size mismatch: want error")
	}
	disc := graph.New()
	disc.AddNodes(2)
	m := traffic.NewMatrix(2)
	m.SetDemand(0, 1, 5)
	if _, err := MinLossPrimaries(disc, m, Options{}); err == nil {
		t.Error("disconnected: want error")
	}
}
