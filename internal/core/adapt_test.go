package core

import (
	"testing"

	"repro/internal/erlang"
	"repro/internal/graph"
	"repro/internal/netmodel"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/traffic"
)

func TestAdaptModeString(t *testing.T) {
	if AdaptNone.String() != "none" || AdaptRederive.String() != "rederive" {
		t.Errorf("mode names: %q, %q", AdaptNone, AdaptRederive)
	}
}

func TestAdaptiveNoneIsInert(t *testing.T) {
	g := netmodel.Quadrangle()
	s, err := New(g, traffic.Uniform(4, 85), Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := s.Adaptive(AdaptNone, nil)
	if a.Hook() != nil {
		t.Error("AdaptNone must install no topology hook")
	}
	if a.Policy().Name() != "controlled-adapted" {
		t.Errorf("policy name %q", a.Policy().Name())
	}
}

func TestAdaptiveRederiveSwapsAndMemoizes(t *testing.T) {
	g := netmodel.Quadrangle()
	s, err := New(g, traffic.Uniform(4, 85), Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := s.Adaptive(AdaptRederive, nil)
	hook := a.Hook()
	if hook == nil {
		t.Fatal("AdaptRederive must install a topology hook")
	}
	st := sim.NewState(g)

	// Fail the duplex trunk between nodes 0 and 1: traffic 0<->1 must now
	// ride the surviving two-hop routes, so the rebuilt table differs and
	// the degraded network carries more load per trunk.
	l01 := g.LinkBetween(0, 1)
	l10 := g.LinkBetween(1, 0)
	if l01 == graph.InvalidLink || l10 == graph.InvalidLink {
		t.Fatal("quadrangle is missing the 0<->1 trunk")
	}
	st.SetLinkDown(l01, true)
	st.SetLinkDown(l10, true)
	hook(1.0, st)
	degraded := a.dyn.Table()
	if degraded == s.Table {
		t.Fatal("rederive kept the nominal table despite a down trunk")
	}
	rs := degraded.Routes(0, 1)
	if rs == nil || len(rs.Primaries) == 0 {
		t.Fatal("degraded table has no primaries for 0->1")
	}
	for _, wp := range rs.Primaries {
		if len(wp.Path.Links) < 2 {
			t.Errorf("degraded primary 0->1 has %d hops, want a detour", len(wp.Path.Links))
		}
		for _, id := range wp.Path.Links {
			if id == l01 {
				t.Error("degraded primary routes over the down link")
			}
		}
	}
	degradedProt := a.dyn.Protection()

	// Repair: the all-up signature is pre-seeded, so the swap must restore
	// the base derivation itself, not a re-computed copy.
	st.SetLinkDown(l01, false)
	st.SetLinkDown(l10, false)
	hook(2.0, st)
	if a.dyn.Table() != s.Table {
		t.Error("repair to the nominal topology must restore the base table")
	}

	// Same failure again: memo hit must return the identical derivation.
	st.SetLinkDown(l01, true)
	st.SetLinkDown(l10, true)
	hook(3.0, st)
	if a.dyn.Table() != degraded {
		t.Error("repeated failure pattern must reuse the memoized table")
	}
	if len(a.memo) != 2 {
		t.Errorf("%d memo entries, want 2 (all-up + one failure pattern)", len(a.memo))
	}
	for i, r := range a.dyn.Protection() {
		if r != degradedProt[i] {
			t.Errorf("memoized protection[%d] = %d, want %d", i, r, degradedProt[i])
		}
	}
}

func TestAdaptiveRederiveKeepsSchemeWhenDisconnected(t *testing.T) {
	// A 3-node line: losing the a-b trunk disconnects the graph, so the
	// hook must keep the current (stale) scheme rather than swap to nothing.
	g := graph.New()
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	if _, _, err := g.AddDuplex(a, b, 30); err != nil {
		t.Fatal(err)
	}
	if _, _, err := g.AddDuplex(b, c, 30); err != nil {
		t.Fatal(err)
	}
	s, err := New(g, traffic.Uniform(3, 10), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ad := s.Adaptive(AdaptRederive, nil)
	hook := ad.Hook()
	st := sim.NewState(g)
	st.SetLinkDown(g.LinkBetween(a, b), true)
	st.SetLinkDown(g.LinkBetween(b, a), true)
	hook(1.0, st)
	if ad.dyn.Table() != s.Table {
		t.Error("disconnected rederive must keep the current table")
	}
	if len(ad.memo) != 1 {
		t.Errorf("%d memo entries after failed derivation, want 1", len(ad.memo))
	}
}

// TestRederiveFromLoadsMatchesFromScratch drives the estimate-epoch entry
// point after a link-down epoch and proves the result is bit-identical to
// a from-scratch derivation on the degraded topology: same route table as
// the failure-epoch hook would install, and protection levels equal to
// Equation 15 evaluated directly (fresh cache, no memoization) on the
// supplied loads.
func TestRederiveFromLoadsMatchesFromScratch(t *testing.T) {
	g := netmodel.Quadrangle()
	s, err := New(g, traffic.Uniform(4, 85), Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := s.Adaptive(AdaptRederive, nil)
	st := sim.NewState(g)
	l01 := g.LinkBetween(0, 1)
	l10 := g.LinkBetween(1, 0)
	st.SetLinkDown(l01, true)
	st.SetLinkDown(l10, true)

	// Estimated loads, deliberately different from the matrix-derived ones.
	loads := make([]float64, g.NumLinks())
	for i := range loads {
		loads[i] = 20 + 7*float64(i)
	}
	if !a.RederiveFromLoads(st, loads) {
		t.Fatal("RederiveFromLoads refused a connected degraded topology")
	}

	// From scratch: clone, degrade, rebuild routes, evaluate Equation 15
	// with a private cache.
	g2 := g.Clone()
	g2.SetDown(l01, true)
	g2.SetDown(l10, true)
	table, err := policy.BuildMinHop(g2, s.H)
	if err != nil {
		t.Fatal(err)
	}
	caps := make([]int, g.NumLinks())
	for id := range caps {
		caps[id] = g.Link(graph.LinkID(id)).Capacity
	}
	want := erlang.ProtectionLevels(loads, caps, table.MaxAltHops, erlang.NewCache())

	got := a.dyn.Protection()
	for id := range want {
		if got[id] != want[id] {
			t.Errorf("protection[%d] = %d, want from-scratch %d", id, got[id], want[id])
		}
	}
	// The installed table must be the degraded-topology derivation — the
	// same one the failure-epoch hook memoizes for this signature.
	a.rederive(st)
	if a.dyn.Table() == s.Table {
		t.Error("RederiveFromLoads left the nominal table in place")
	}

	// Wrong-length loads and a disconnected topology are refused without
	// touching the installed scheme.
	before := a.dyn.Protection()
	if a.RederiveFromLoads(st, loads[:2]) {
		t.Error("wrong-length loads accepted")
	}
	for i := range before {
		if a.dyn.Protection()[i] != before[i] {
			t.Fatal("refused rederive mutated protection")
		}
	}
}
