package core

import (
	"repro/internal/erlang"
	"repro/internal/graph"
	"repro/internal/policy"
	"repro/internal/sim"
)

// AdaptMode selects how a derived scheme responds to topology changes
// during a run with dynamic failures (sim.Config.Failures).
type AdaptMode int

const (
	// AdaptNone freezes the scheme as derived from the nominal topology:
	// routes and protection levels r^k never change, so calls whose
	// primary traverses a down link survive only via the nominal
	// alternates — the paper's static §4 setting.
	AdaptNone AdaptMode = iota
	// AdaptRederive rebuilds the route table and re-derives the protection
	// levels (Equation 15) from the degraded topology at every
	// failure/repair epoch, using the shared Erlang cache; the scheme that
	// controlled the nominal network keeps controlling the surviving one.
	AdaptRederive
)

// String returns the mode's report name.
func (m AdaptMode) String() string {
	if m == AdaptRederive {
		return "rederive"
	}
	return "none"
}

// AdaptiveScheme binds a derived Scheme to an adaptation mode, yielding a
// controlled policy plus the sim.Config.TopologyHook that drives it. An
// AdaptiveScheme is stateful (the policy's table and levels are swapped at
// failure epochs): build a fresh one per run and do not share it across
// concurrent runs. Derived schemes are memoized by down-link signature, so
// a repair back to a previously seen topology reuses its derivation — with
// the shared Erlang cache, sweeps over many failure patterns stay cheap.
type AdaptiveScheme struct {
	base  *Scheme
	mode  AdaptMode
	cache *erlang.Cache
	dyn   *policy.Dynamic
	memo  map[string]adapted
}

// adapted is one memoized derivation for a down-link signature.
type adapted struct {
	table *policy.Table
	prot  []int
}

// Adaptive wraps the scheme for dynamic-failure runs. cache may be nil for
// a private Erlang cache; pass a shared one when many runs adapt over the
// same capacities.
func (s *Scheme) Adaptive(mode AdaptMode, cache *erlang.Cache) *AdaptiveScheme {
	if cache == nil {
		cache = erlang.NewCache()
	}
	a := &AdaptiveScheme{
		base:  s,
		mode:  mode,
		cache: cache,
		dyn:   policy.NewDynamic(s.Table, s.Protection),
		memo:  make(map[string]adapted),
	}
	// The all-up signature is the base derivation itself.
	sig := make([]byte, s.Graph.NumLinks())
	a.memo[string(sig)] = adapted{table: s.Table, prot: s.Protection}
	return a
}

// Policy returns the controlled policy whose routes and protection levels
// follow the adaptation (with AdaptNone it simply stays on the base
// scheme). The policy is per-run state; see AdaptiveScheme.
func (a *AdaptiveScheme) Policy() sim.Policy { return a.dyn }

// Hook returns the sim.Config.TopologyHook that re-derives the scheme at
// failure/repair epochs, or nil for AdaptNone (no hook, no overhead).
func (a *AdaptiveScheme) Hook() func(at float64, st *sim.State) {
	if a.mode != AdaptRederive {
		return nil
	}
	return func(_ float64, st *sim.State) { a.rederive(st) }
}

// rederive swaps the policy to the scheme derived for the state's current
// down-link set. If the degraded topology is disconnected or route
// building fails, the current scheme is kept: a stale route table degrades
// service (its dead paths simply never admit), a missing one would drop
// everything.
func (a *AdaptiveScheme) rederive(st *sim.State) {
	if m, ok := a.derived(st); ok {
		a.dyn.Swap(m.table, m.prot)
	}
}

// derived returns the scheme derivation for the state's current down-link
// signature, computing and memoizing it on first sight. ok is false when
// the degraded topology is disconnected or route building fails — callers
// keep the current scheme in that case.
func (a *AdaptiveScheme) derived(st *sim.State) (adapted, bool) {
	n := a.base.Graph.NumLinks()
	sig := make([]byte, n)
	for id := 0; id < n; id++ {
		if st.LinkDown(graph.LinkID(id)) {
			sig[id] = 1
		}
	}
	if m, ok := a.memo[string(sig)]; ok {
		return m, true
	}
	g := a.base.Graph.Clone()
	for id := 0; id < n; id++ {
		g.SetDown(graph.LinkID(id), sig[id] != 0)
	}
	if !g.Connected() {
		return adapted{}, false
	}
	table, err := policy.BuildMinHop(g, a.base.H)
	if err != nil {
		return adapted{}, false
	}
	loads := expectedPrimaryLoads(g, a.base.Matrix, table)
	caps := make([]int, n)
	for id := range caps {
		caps[id] = g.Link(graph.LinkID(id)).Capacity
	}
	prot := erlang.ProtectionLevels(loads, caps, table.MaxAltHops, a.cache)
	m := adapted{table: table, prot: prot}
	a.memo[string(sig)] = m
	return m, true
}

// RederiveFromLoads is the estimate-epoch generalization of the
// failure-epoch hook: it re-derives protection levels (Equation 15, shared
// Erlang cache) from externally supplied per-link loads — the live
// estimator's Λ̂ rather than the matrix's a-priori Λ — on the route table
// for the state's current down-link signature, and swaps them in. The
// route table itself still follows topology (memoized per signature); only
// the protection derivation uses the estimated loads, which change every
// epoch and are therefore not memoized. Returns false (keeping the current
// scheme) when loads has the wrong length or the degraded topology has no
// usable derivation.
func (a *AdaptiveScheme) RederiveFromLoads(st *sim.State, loads []float64) bool {
	n := a.base.Graph.NumLinks()
	if len(loads) != n {
		return false
	}
	m, ok := a.derived(st)
	if !ok {
		return false
	}
	caps := make([]int, n)
	for id := range caps {
		caps[id] = a.base.Graph.Link(graph.LinkID(id)).Capacity
	}
	prot := erlang.ProtectionLevels(loads, caps, m.table.MaxAltHops, a.cache)
	a.dyn.Swap(m.table, prot)
	return true
}
