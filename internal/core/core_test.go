package core

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/netmodel"
	"repro/internal/sim"
	"repro/internal/traffic"
)

func TestNewQuadrangleScheme(t *testing.T) {
	g := netmodel.Quadrangle()
	m := traffic.Uniform(4, 85)
	s, err := New(g, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.H != 3 {
		t.Errorf("H = %d, want 3", s.H)
	}
	for id, l := range s.LinkLoads {
		if math.Abs(l-85) > 1e-9 {
			t.Errorf("link %d load %v, want 85", id, l)
		}
	}
	// Symmetric network: one protection level everywhere, and it must be
	// minimal per Equation 15.
	r0 := s.Protection[0]
	for id, r := range s.Protection {
		if r != r0 {
			t.Errorf("link %d protection %d != %d", id, r, r0)
		}
	}
	if r0 <= 0 || r0 >= 100 {
		t.Errorf("protection %d implausible for Λ=85, C=100, H=3", r0)
	}
	for id, b := range s.LossBounds() {
		if b > 1.0/3+1e-12 {
			t.Errorf("link %d loss bound %v > 1/H", id, b)
		}
	}
}

func TestNewValidation(t *testing.T) {
	g := netmodel.Quadrangle()
	if _, err := New(nil, traffic.Uniform(4, 1), Options{}); err == nil {
		t.Error("nil graph: want error")
	}
	if _, err := New(g, nil, Options{}); err == nil {
		t.Error("nil matrix: want error")
	}
	if _, err := New(g, traffic.Uniform(5, 1), Options{}); err == nil {
		t.Error("size mismatch: want error")
	}
	if _, err := New(g, traffic.Uniform(4, 1), Options{LoadOverride: []float64{1}}); err == nil {
		t.Error("bad override length: want error")
	}
	if _, err := NewWithTable(g, traffic.Uniform(4, 1), nil, Options{}); err == nil {
		t.Error("nil table: want error")
	}
}

func TestNSFNetSchemeReproducesTable1(t *testing.T) {
	g := netmodel.NSFNet()
	m, _, err := traffic.NSFNetNominal()
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range []int{6, 11} {
		s, err := New(g, m, Options{H: h})
		if err != nil {
			t.Fatal(err)
		}
		// Λ^k derived from the fitted matrix matches Table 1.
		for pair, want := range netmodel.NSFNetTable1Load() {
			id := g.LinkBetween(pair[0], pair[1])
			if got := s.LinkLoads[id]; math.Abs(got-want) > 1e-4 {
				t.Errorf("H=%d Λ(%v) = %v, want %v", h, pair, got, want)
			}
		}
		// r^k matches Table 1 (≥26/30 exact; see erlang tests for rounding).
		col := 0
		if h == 11 {
			col = 1
		}
		exact := 0
		for pair, want := range netmodel.NSFNetTable1Protection() {
			if s.Protection[g.LinkBetween(pair[0], pair[1])] == want[col] {
				exact++
			}
		}
		if exact < 26 {
			t.Errorf("H=%d: %d/30 protection rows exact, want >= 26", h, exact)
		}
	}
}

func TestSchemePoliciesRunnable(t *testing.T) {
	g := netmodel.Quadrangle()
	m := traffic.Uniform(4, 60)
	s, err := New(g, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := s.OttKrishnan()
	if err != nil {
		t.Fatal(err)
	}
	tr := sim.GenerateTrace(m, 30, 1)
	for _, pol := range []sim.Policy{s.SinglePath(), s.Uncontrolled(), s.Controlled(), ok} {
		res, err := sim.Run(sim.Config{Graph: g, Policy: pol, Trace: tr, Warmup: 5})
		if err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		if res.Offered == 0 {
			t.Fatalf("%s: no calls offered", pol.Name())
		}
		if res.Offered != res.Accepted+res.Blocked {
			t.Fatalf("%s: conservation violated", pol.Name())
		}
	}
}

func TestLoadOverride(t *testing.T) {
	g := netmodel.Quadrangle()
	m := traffic.Uniform(4, 10)
	override := make([]float64, g.NumLinks())
	for i := range override {
		override[i] = 95
	}
	s, err := New(g, m, Options{LoadOverride: override})
	if err != nil {
		t.Fatal(err)
	}
	if s.LinkLoads[0] != 95 {
		t.Errorf("override ignored: %v", s.LinkLoads[0])
	}
	// Protection reflects the override (heavier load), not the matrix.
	light, err := New(g, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Protection[0] <= light.Protection[0] {
		t.Errorf("override protection %d should exceed light-load %d",
			s.Protection[0], light.Protection[0])
	}
}

func TestControlledNeverWorseThanSinglePathQuadrangle(t *testing.T) {
	// The paper's headline guarantee, checked statistically with common
	// random numbers at a heavy load where it bites (95 Erlangs/pair on the
	// quadrangle): controlled alternate routing accepts at least as many
	// calls as single-path routing, up to a small statistical slack.
	g := netmodel.Quadrangle()
	m := traffic.Uniform(4, 95)
	s, err := New(g, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var accSingle, accControlled, offered int64
	for seed := int64(0); seed < 5; seed++ {
		tr := sim.GenerateTrace(m, 110, seed)
		rs, err := sim.Run(sim.Config{Graph: g, Policy: s.SinglePath(), Trace: tr, Warmup: 10})
		if err != nil {
			t.Fatal(err)
		}
		rc, err := sim.Run(sim.Config{Graph: g, Policy: s.Controlled(), Trace: tr, Warmup: 10})
		if err != nil {
			t.Fatal(err)
		}
		accSingle += rs.Accepted
		accControlled += rc.Accepted
		offered += rs.Offered
	}
	// Allow 0.2% of offered as statistical slack (the guarantee is in
	// expectation under Poisson assumptions, not per sample path).
	slack := offered / 500
	if accControlled+slack < accSingle {
		t.Errorf("controlled accepted %d < single-path %d (offered %d)",
			accControlled, accSingle, offered)
	}
}

func TestProtectionTraceObservesEverySearch(t *testing.T) {
	g := netmodel.Quadrangle()
	m := traffic.Uniform(4, 90)
	perLink := make(map[graph.LinkID]int)
	s, err := New(g, m, Options{ProtectionTrace: func(link graph.LinkID, r int, ratio float64) {
		if ratio < 0 || ratio > 1+1e-12 {
			t.Fatalf("link %d r=%d ratio %v outside [0,1]", link, r, ratio)
		}
		perLink[link]++
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(perLink) != g.NumLinks() {
		t.Fatalf("trace covered %d links, want %d", len(perLink), g.NumLinks())
	}
	// The search examines r = 0..r^k inclusive on each link.
	for id, n := range perLink {
		if want := s.Protection[id] + 1; n != want {
			t.Errorf("link %d: %d candidates traced, want %d", id, n, want)
		}
	}
	// The hook must not perturb derivation.
	bare, err := New(g, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for id := range s.Protection {
		if s.Protection[id] != bare.Protection[id] {
			t.Fatalf("trace changed protection on link %d: %d vs %d", id, s.Protection[id], bare.Protection[id])
		}
	}
}
