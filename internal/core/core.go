// Package core assembles the paper's primary contribution: given a topology,
// an offered-traffic matrix, and the design parameter H (maximum alternate
// hop length), it derives everything the controlled alternate-routing scheme
// needs — the SI primary routing, the per-link primary demands Λ^k
// (Equation 1), the state-protection levels r^k (Equation 15) — and
// manufactures the comparable routing policies of §4.
package core

import (
	"fmt"

	"repro/internal/erlang"
	"repro/internal/graph"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/traffic"
)

// Scheme is a fully derived controlled-alternate-routing configuration.
type Scheme struct {
	// Graph is the topology the scheme was derived for.
	Graph *graph.Graph
	// Matrix is the offered-traffic matrix the link demands were derived
	// from (the paper's nominal T, possibly scaled).
	Matrix *traffic.Matrix
	// Table is the shared route suite (primaries + ordered alternates).
	Table *policy.Table
	// H is the maximum alternate hop length (Equation 15 design parameter).
	H int
	// LinkLoads is Λ^k per link (Equation 1) under the SI primary routing.
	LinkLoads []float64
	// Protection is r^k per link (Equation 15).
	Protection []int
}

// Options tunes scheme construction.
type Options struct {
	// H is the maximum alternate hop length; 0 means N−1 (unlimited
	// loop-free alternates).
	H int
	// LoadOverride, when non-nil, supplies the Λ^k vector directly instead
	// of deriving it from the matrix — the paper's simulations assume links
	// know Λ^k a priori, and Table 1 publishes those values. Indexed by
	// LinkID.
	LoadOverride []float64
	// ProtectionTrace, when non-nil, observes the Equation-15 search on
	// every link: it is called for each candidate r examined with the loss
	// ratio B(Λ^k,C^k)/B(Λ^k,C^k−r) — the scheme derivation's convergence
	// trace (see internal/obs.ConvergenceTrace). Tracing bypasses the
	// Erlang cache so every link's search is observed in full.
	ProtectionTrace func(link graph.LinkID, r int, ratio float64)
	// ErlangCache, when non-nil, memoizes the Equation-15 searches across
	// this derivation and any others sharing the cache — a load sweep that
	// re-derives schemes hits mostly cached levels. Nil means a private
	// cache scoped to this derivation (links related by symmetry still
	// share their recursion). Cached results are bit-identical to uncached
	// ones.
	ErlangCache *erlang.Cache
}

// New derives a Scheme for min-hop SI primary routing (the paper's
// demonstration rule).
func New(g *graph.Graph, m *traffic.Matrix, opts Options) (*Scheme, error) {
	if g == nil || m == nil {
		return nil, fmt.Errorf("core: nil graph or matrix")
	}
	if m.Size() != g.NumNodes() {
		return nil, fmt.Errorf("core: matrix size %d for %d nodes", m.Size(), g.NumNodes())
	}
	table, err := policy.BuildMinHop(g, opts.H)
	if err != nil {
		return nil, fmt.Errorf("core: building routes: %w", err)
	}
	return finish(g, m, table, opts)
}

// NewWithTable derives a Scheme over an externally built route table (e.g.
// bifurcated min-loss primaries); Λ^k is computed from the expected primary
// flow: each pair contributes Weight·T(i,j) to every link of each primary.
func NewWithTable(g *graph.Graph, m *traffic.Matrix, table *policy.Table, opts Options) (*Scheme, error) {
	if table == nil {
		return nil, fmt.Errorf("core: nil table")
	}
	return finish(g, m, table, opts)
}

func finish(g *graph.Graph, m *traffic.Matrix, table *policy.Table, opts Options) (*Scheme, error) {
	loads := opts.LoadOverride
	if loads == nil {
		loads = expectedPrimaryLoads(g, m, table)
	}
	if len(loads) != g.NumLinks() {
		return nil, fmt.Errorf("core: %d loads for %d links", len(loads), g.NumLinks())
	}
	var prot []int
	if opts.ProtectionTrace != nil {
		prot = make([]int, g.NumLinks())
		for id := 0; id < g.NumLinks(); id++ {
			link := graph.LinkID(id)
			trace := func(r int, ratio float64) { opts.ProtectionTrace(link, r, ratio) }
			prot[id] = erlang.ProtectionLevelTraced(loads[id], g.Link(link).Capacity, table.MaxAltHops, trace)
		}
	} else {
		caps := make([]int, g.NumLinks())
		for id := range caps {
			caps[id] = g.Link(graph.LinkID(id)).Capacity
		}
		prot = erlang.ProtectionLevels(loads, caps, table.MaxAltHops, opts.ErlangCache)
	}
	return &Scheme{
		Graph:      g,
		Matrix:     m,
		Table:      table,
		H:          table.MaxAltHops,
		LinkLoads:  loads,
		Protection: prot,
	}, nil
}

// expectedPrimaryLoads computes Λ^k from the table's (possibly bifurcated)
// primaries: Equation 1 generalized with selection weights.
func expectedPrimaryLoads(g *graph.Graph, m *traffic.Matrix, table *policy.Table) []float64 {
	loads := make([]float64, g.NumLinks())
	n := g.NumNodes()
	for i := graph.NodeID(0); int(i) < n; i++ {
		for j := graph.NodeID(0); int(j) < n; j++ {
			if i == j {
				continue
			}
			rs := table.Routes(i, j)
			if rs == nil {
				continue
			}
			d := m.Demand(i, j)
			for _, wp := range rs.Primaries {
				for _, id := range wp.Path.Links {
					loads[id] += d * wp.Weight
				}
			}
		}
	}
	return loads
}

// SinglePath returns the single-path (SI only) baseline policy.
func (s *Scheme) SinglePath() sim.Policy { return policy.SinglePath{T: s.Table} }

// Uncontrolled returns the uncontrolled alternate-routing policy.
func (s *Scheme) Uncontrolled() sim.Policy { return policy.Uncontrolled{T: s.Table} }

// Controlled returns the paper's controlled alternate-routing policy with
// the scheme's protection levels.
func (s *Scheme) Controlled() sim.Policy {
	return policy.Controlled{T: s.Table, R: s.Protection}
}

// OttKrishnan returns the separable shadow-price comparator built from the
// scheme's (unreduced) link loads.
func (s *Scheme) OttKrishnan() (sim.Policy, error) {
	p, err := policy.NewOttKrishnan(s.Table, s.LinkLoads)
	if err != nil {
		return nil, err
	}
	return p, nil
}

// LossBounds returns the Theorem 1 per-link bounds
// B(Λ^k,C^k)/B(Λ^k,C^k−r^k) at the scheme's protection levels; every entry
// is guaranteed <= 1/H unless the protection saturates at C (links whose
// overload makes any alternate admission unprofitable).
func (s *Scheme) LossBounds() []float64 {
	out := make([]float64, s.Graph.NumLinks())
	for id := range out {
		out[id] = erlang.LossBound(s.LinkLoads[id], s.Graph.Link(graph.LinkID(id)).Capacity, s.Protection[id])
	}
	return out
}
