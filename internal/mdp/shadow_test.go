package mdp

import (
	"math"
	"testing"

	"repro/internal/erlang"
)

func TestShadowPricesBoundaryConsistency(t *testing.T) {
	// The downward boundary p(C−1) = ν(1−B)/C must agree with the upward
	// recursion — a strong whole-vector consistency check.
	for _, load := range []float64{5, 42, 74, 103, 167} {
		for _, c := range []int{1, 10, 100} {
			p := ShadowPrices(load, c)
			b := erlang.B(load, c)
			want := load * (1 - b) / float64(c)
			if got := p[c-1]; math.Abs(got-want) > 1e-9*math.Max(want, 1) {
				t.Errorf("ν=%v C=%d: p(C−1) = %v, want %v", load, c, got, want)
			}
		}
	}
}

func TestShadowPricesMonotoneIncreasing(t *testing.T) {
	// A busier link is costlier to occupy.
	for _, load := range []float64{10, 74, 120} {
		p := ShadowPrices(load, 100)
		for s := 1; s < len(p); s++ {
			if p[s] < p[s-1]-1e-12 {
				t.Errorf("ν=%v: p(%d)=%v < p(%d)=%v", load, s, p[s], s-1, p[s-1])
			}
		}
		if p[0] != erlang.B(load, 100) {
			t.Errorf("ν=%v: p(0)=%v, want B=%v", load, p[0], erlang.B(load, 100))
		}
	}
}

func TestShadowPricesBelowUnitRevenue(t *testing.T) {
	// For an underloaded link the price of one extra call never exceeds the
	// unit revenue: p(C−1) = ν(1−B)/C < 1 whenever ν(1−B) < C (carried load
	// below capacity, always true).
	for _, load := range []float64{10, 74, 99, 150, 300} {
		p := ShadowPrices(load, 100)
		if p[99] >= 1 {
			t.Errorf("ν=%v: p(99)=%v >= 1 (carried load cannot exceed capacity)", load, p[99])
		}
	}
}

func TestShadowPricesMatchValueIteration(t *testing.T) {
	for _, tc := range []struct {
		load float64
		c    int
	}{{3, 5}, {8, 10}, {20, 25}} {
		exact := ShadowPrices(tc.load, tc.c)
		vi := ShadowPricesByValueIteration(tc.load, tc.c, 200000)
		for s := range exact {
			if math.Abs(exact[s]-vi[s]) > 5e-4 {
				t.Errorf("ν=%v C=%d s=%d: recursion %v vs VI %v", tc.load, tc.c, s, exact[s], vi[s])
			}
		}
	}
}

func TestLossRate(t *testing.T) {
	got := LossRate(74, 100)
	want := 74 * erlang.B(74, 100)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("LossRate = %v, want %v", got, want)
	}
}

func TestShadowPricesPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("zero load", func() { ShadowPrices(0, 10) })
	mustPanic("zero capacity", func() { ShadowPrices(1, 0) })
	mustPanic("VI bad args", func() { ShadowPricesByValueIteration(-1, 10, 10) })
}
