// Package mdp computes per-link shadow prices for the Ott–Krishnan
// separable state-dependent routing scheme, the comparator the paper reports
// performing poorly on the sparse NSFNet model (§4.2.2).
//
// For an M/M/C/C link offered state-independent Poisson traffic of intensity
// ν (unit mean holding), the shadow price p(s) is the expected increase in
// the number of future calls lost on the link caused by admitting one extra
// call when s calls are in progress. It is the bias difference
// h(s+1) − h(s) of the average-cost Markov decision problem whose cost is
// one per lost call, and satisfies a closed two-term recursion derived from
// the Poisson (average-cost balance) equation:
//
//	p(0)   = B(ν, C)                      (g/ν with g = ν·B the loss rate)
//	p(s)   = B(ν, C) + (s/ν)·p(s−1)       for 1 <= s <= C−1
//
// with the consistency boundary p(C−1) = ν(1 − B(ν, C))/C.
package mdp

import (
	"fmt"
	"math"

	"repro/internal/erlang"
)

// ShadowPrices returns the vector p(0..C−1) of link shadow prices for an
// M/M/C/C link with offered load (Erlangs, unit holding). p[s] prices the
// admission of a call when the occupancy is s. load must be > 0 and
// capacity >= 1.
func ShadowPrices(load float64, capacity int) []float64 {
	if capacity < 1 {
		panic(fmt.Errorf("mdp: capacity %d", capacity))
	}
	if load <= 0 || math.IsNaN(load) || math.IsInf(load, 0) {
		panic(fmt.Errorf("mdp: load %v", load))
	}
	b := erlang.B(load, capacity)
	p := make([]float64, capacity)
	p[0] = b
	for s := 1; s < capacity; s++ {
		p[s] = b + float64(s)/load*p[s-1]
	}
	return p
}

// LossRate returns g = ν·B(ν, C), the long-run rate of lost calls on the
// link, which is the average cost of the underlying decision problem.
func LossRate(load float64, capacity int) float64 {
	return load * erlang.B(load, capacity)
}

// ShadowPricesByValueIteration computes the same prices numerically by
// relative value iteration on the uniformized chain, for cross-validation in
// tests and for experimenting with non-standard cost structures. iters
// controls the iteration count; a few thousand suffice at paper scales.
func ShadowPricesByValueIteration(load float64, capacity, iters int) []float64 {
	if capacity < 1 || load <= 0 {
		panic(fmt.Errorf("mdp: invalid load %v or capacity %d", load, capacity))
	}
	// Uniformization constant: max total rate.
	u := load + float64(capacity) + 1
	h := make([]float64, capacity+1)
	next := make([]float64, capacity+1)
	for it := 0; it < iters; it++ {
		for s := 0; s <= capacity; s++ {
			v := 0.0
			stay := u
			if s < capacity {
				v += load * h[s+1]
				stay -= load
			} else {
				// Arrivals in the full state are lost: incur unit cost and
				// remain.
				v += load * (1 + h[s])
				stay -= load
			}
			if s > 0 {
				v += float64(s) * h[s-1]
				stay -= float64(s)
			}
			v += stay * h[s]
			next[s] = v / u
		}
		// Renormalize against state 0 to keep the relative values bounded.
		base := next[0]
		for s := range next {
			next[s] -= base
		}
		h, next = next, h
	}
	p := make([]float64, capacity)
	for s := 0; s < capacity; s++ {
		p[s] = h[s+1] - h[s]
	}
	return p
}
