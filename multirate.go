package altroute

import (
	"repro/internal/multirate"
)

// Multi-rate extension: heterogeneous call classes with per-class bandwidth,
// the support the paper defers (§2). Protection levels come from the
// Kaufman–Roberts analogue of Equation 15.
type (
	// CallClass is one traffic class (name, bandwidth units, per-pair
	// demand matrix of call Erlangs).
	CallClass = multirate.Class
	// ClassLoad is one class's offered load on a single link.
	ClassLoad = multirate.ClassLoad
	// MultiRateTrace is a class-tagged arrival sequence.
	MultiRateTrace = multirate.Trace
	// MultiRateConfig parameterizes a multi-rate run.
	MultiRateConfig = multirate.Config
	// MultiRateResult aggregates a run, overall and per class.
	MultiRateResult = multirate.Result
	// MultiRateDiscipline selects the routing rule.
	MultiRateDiscipline = multirate.Discipline
)

// Multi-rate disciplines.
const (
	// MultiRateSinglePath blocks a call when its primary path lacks
	// bandwidth.
	MultiRateSinglePath = multirate.SinglePath
	// MultiRateUncontrolled overflows to any alternate with bandwidth.
	MultiRateUncontrolled = multirate.Uncontrolled
	// MultiRateControlled overflows only below the per-link protection
	// boundary.
	MultiRateControlled = multirate.Controlled
)

// KaufmanRoberts returns per-class blocking probabilities of a
// complete-sharing link offered the given classes.
func KaufmanRoberts(classes []ClassLoad, capacity int) ([]float64, error) {
	return multirate.ClassBlocking(classes, capacity)
}

// MultiRateProtectionLevel generalizes Equation 15 to multiple classes: the
// smallest r such that every class's Kaufman–Roberts blocking ratio stays
// at or below 1/maxHops.
func MultiRateProtectionLevel(classes []ClassLoad, capacity, maxHops int) (int, error) {
	return multirate.ProtectionLevel(classes, capacity, maxHops)
}

// GenerateMultiRateTrace draws class-tagged Poisson arrivals.
func GenerateMultiRateTrace(classes []CallClass, horizon float64, seed int64) (*MultiRateTrace, error) {
	return multirate.GenerateTrace(classes, horizon, seed)
}

// DeriveMultiRateProtection computes per-link protection from the classes'
// demands under the route table's primaries.
func DeriveMultiRateProtection(g *Graph, t *RouteTable, classes []CallClass) ([]int, error) {
	return multirate.DeriveProtection(g, t, classes)
}

// RunMultiRate replays a class-tagged trace under a discipline.
func RunMultiRate(cfg MultiRateConfig) (*MultiRateResult, error) {
	return multirate.Run(cfg)
}
