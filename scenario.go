package altroute

import (
	"io"

	"repro/internal/netio"
)

// Scenario types: JSON-serializable network descriptions for running the
// scheme on user-supplied topologies (see cmd/altsim's custom and
// export-scenario subcommands).
type (
	// Scenario describes a topology, workload and H parameter.
	Scenario = netio.Scenario
	// LinkSpec is one facility of a scenario.
	LinkSpec = netio.LinkSpec
	// DemandSpec is one ordered pair's offered load.
	DemandSpec = netio.DemandSpec
)

// ReadScenario parses a scenario JSON document.
func ReadScenario(r io.Reader) (*Scenario, error) { return netio.Read(r) }

// ScenarioFromNetwork captures a graph and matrix as a scenario document.
func ScenarioFromNetwork(name string, g *Graph, m *Matrix, h int) (*Scenario, error) {
	return netio.FromNetwork(name, g, m, h)
}
