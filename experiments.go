package altroute

import (
	"repro/internal/experiments"
)

// Experiment harness re-exports: each entry point regenerates one table or
// figure of the paper (see DESIGN.md's per-experiment index) and renders the
// same rows/series the paper reports.
type (
	// SimParams are the common replication settings; the zero value is the
	// paper's (10 seeds, 10-unit warm-up, 100 measured units).
	SimParams = experiments.SimParams
	// Sweep is a blocking-versus-load figure (one series per policy plus
	// the Erlang bound).
	Sweep = experiments.Sweep
	// Fig2Result is the protection-level figure.
	Fig2Result = experiments.Fig2Result
	// Table1Result is the NSFNet link table with reproduction diagnostics.
	Table1Result = experiments.Table1Result
	// PathCensus summarizes alternate-route availability.
	PathCensus = experiments.PathCensus
)

// Fig2 regenerates Figure 2: r versus Λ for C=100 (or any capacity) and the
// given H values (nil = the paper's {2, 6, 120}).
func Fig2(capacity int, hs []int) *Fig2Result { return experiments.Fig2(capacity, hs) }

// QuadrangleFigure regenerates Figures 3/4: blocking versus offered load on
// the fully-connected quadrangle (nil loads = the default grid).
func QuadrangleFigure(loads []float64, h int, p SimParams) (*Sweep, error) {
	return experiments.Quadrangle(loads, h, p)
}

// Table1 regenerates the paper's Table 1 from the reconstructed nominal
// matrix and reports match diagnostics.
func Table1() (*Table1Result, error) { return experiments.Table1() }

// NSFNetFigure regenerates Figures 6/7: blocking versus load on the NSFNet
// model (h=11 for the paper's unlimited alternates; includeOttKrishnan adds
// the §4.2.2 comparator).
func NSFNetFigure(loads []float64, h int, includeOttKrishnan bool, p SimParams) (*Sweep, error) {
	return experiments.NSFNetSweep(loads, h, includeOttKrishnan, p)
}

// AlternateCensus reports the NSFNet alternate-path availability for a hop
// limit (the §4.2.2 census).
func AlternateCensus(h int) (*PathCensus, error) { return experiments.CensusNSFNet(h) }
