// benchguard is the CI throughput tripwire: it reads `go test -bench`
// output on stdin, extracts the calls/sec metric reported by
// BenchmarkRunCalls, and compares the best observed number per variant
// (stream, replay) against the recorded baseline in BENCH_sim.json. It
// exits nonzero when any variant regresses by more than -max-regress
// (a fraction; 0.30 means a 30% drop fails).
//
// The input is echoed to stdout unchanged so CI logs keep the full
// benchmark output. Best-of-count comparison plus a generous threshold
// make the guard robust to the noise of short -benchtime runs; it is a
// tripwire for large regressions, not a precision benchmark — update the
// recorded baseline from a full `make bench` when the engine changes.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// variantKeys maps a BenchmarkRunCalls sub-benchmark name to the key
// holding its recorded numbers under "optimized" in the baseline file.
var variantKeys = map[string]string{
	"stream": "run_calls_stream_calls_per_sec",
	"replay": "run_calls_replay_calls_per_sec",
}

// parseBench scans benchmark output for BenchmarkRunCalls results,
// echoing every line to echo, and returns the best observed calls/sec
// per variant.
func parseBench(r io.Reader, echo io.Writer) (map[string]float64, error) {
	best := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if echo != nil {
			fmt.Fprintln(echo, line)
		}
		rest, ok := strings.CutPrefix(line, "BenchmarkRunCalls/")
		if !ok {
			continue
		}
		fields := strings.Fields(rest)
		if len(fields) == 0 {
			continue
		}
		// The name field is "<variant>" on a single-CPU host and
		// "<variant>-<GOMAXPROCS>" otherwise.
		variant, _, _ := strings.Cut(fields[0], "-")
		if _, known := variantKeys[variant]; !known {
			continue
		}
		for i := 1; i < len(fields); i++ {
			if fields[i] != "calls/sec" {
				continue
			}
			v, err := strconv.ParseFloat(fields[i-1], 64)
			if err != nil {
				return nil, fmt.Errorf("unparsable calls/sec in %q: %v", line, err)
			}
			if v > best[variant] {
				best[variant] = v
			}
			break
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return best, nil
}

// baselineBest extracts the best recorded calls/sec per variant from the
// BENCH_sim.json "optimized" block, accepting both a single number and a
// best-of-count array per key.
func baselineBest(data []byte) (map[string]float64, error) {
	var file struct {
		Optimized map[string]json.RawMessage `json:"optimized"`
	}
	if err := json.Unmarshal(data, &file); err != nil {
		return nil, err
	}
	out := make(map[string]float64)
	for variant, key := range variantKeys {
		raw, ok := file.Optimized[key]
		if !ok {
			return nil, fmt.Errorf("baseline is missing optimized.%s", key)
		}
		var vals []float64
		if err := json.Unmarshal(raw, &vals); err != nil {
			var v float64
			if err := json.Unmarshal(raw, &v); err != nil {
				return nil, fmt.Errorf("optimized.%s is neither a number nor an array", key)
			}
			vals = []float64{v}
		}
		b := 0.0
		for _, v := range vals {
			if v > b {
				b = v
			}
		}
		if b <= 0 {
			return nil, fmt.Errorf("optimized.%s has no positive value", key)
		}
		out[variant] = b
	}
	return out, nil
}

// check compares observed against baseline under the allowed regression
// fraction and returns one human-readable verdict line per variant plus
// the overall pass/fail. Missing variants fail: a guard that matched no
// benchmark output must not pass vacuously.
func check(observed, baseline map[string]float64, maxRegress float64) ([]string, bool) {
	variants := make([]string, 0, len(baseline))
	for v := range baseline {
		variants = append(variants, v)
	}
	sort.Strings(variants)
	var lines []string
	ok := true
	for _, v := range variants {
		base := baseline[v]
		got, seen := observed[v]
		if !seen {
			lines = append(lines, fmt.Sprintf("benchguard: %s: no BenchmarkRunCalls/%s result in input", v, v))
			ok = false
			continue
		}
		floor := base * (1 - maxRegress)
		delta := got/base - 1
		verdict := "ok"
		if got < floor {
			verdict = fmt.Sprintf("FAIL (below the %.0f%% floor %.0f)", 100*(1-maxRegress), floor)
			ok = false
		}
		lines = append(lines, fmt.Sprintf("benchguard: %s: %.0f calls/sec vs baseline %.0f (%+.1f%%): %s",
			v, got, base, 100*delta, verdict))
	}
	return lines, ok
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_sim.json", "recorded benchmark baseline to compare against")
	maxRegress := flag.Float64("max-regress", 0.30, "maximum tolerated calls/sec regression as a fraction")
	flag.Parse()
	if *maxRegress < 0 || *maxRegress >= 1 {
		fmt.Fprintln(os.Stderr, "benchguard: -max-regress must be in [0, 1)")
		os.Exit(2)
	}
	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	baseline, err := baselineBest(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %s: %v\n", *baselinePath, err)
		os.Exit(2)
	}
	observed, err := parseBench(os.Stdin, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	lines, ok := check(observed, baseline, *maxRegress)
	for _, l := range lines {
		fmt.Fprintln(os.Stderr, l)
	}
	if !ok {
		os.Exit(1)
	}
}
