// benchguard is the CI throughput tripwire: it reads `go test -bench`
// output on stdin, extracts the guarded metrics (calls/sec figures from
// the simulation-core benchmarks), and compares the best observed number
// per metric against the recorded baseline JSON. It exits nonzero when
// any guarded metric regresses past its floor.
//
// Metrics are selected from a fixed allowlist with the repeatable
// -metric flag, each optionally carrying its own regression budget:
//
//	benchguard -baseline BENCH_sim.json -metric stream -metric replay=0.25
//
// selects the stream metric at the global -max-regress and the replay
// metric at a tighter 25%. Without -metric flags the guard checks the
// classic pair (stream, replay) for backward compatibility.
//
// The input is echoed to stdout unchanged so CI logs keep the full
// benchmark output. Best-of-count comparison plus generous thresholds
// make the guard robust to the noise of short -benchtime runs; it is a
// tripwire for large regressions, not a precision benchmark — update the
// recorded baseline from a full `make bench` when the engine changes.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// metricDef places one guardable metric: which benchmark and
// sub-benchmark report it, the go-bench custom unit carrying the value,
// and the key holding its recorded numbers under "optimized" in the
// baseline file. All current metrics are throughputs (higher is better).
type metricDef struct {
	bench   string
	variant string
	unit    string
	key     string
}

// metricDefs is the allowlist of guardable metrics. stream/replay are the
// classic end-to-end throughput pair (BENCH_sim.json); shard-seq and
// shard-multi guard the sharded engine on the metro scenario
// (BENCH_shard.json): shards=1 is the no-overhead contract (the request
// must dispatch to the sequential engine at sequential speed), shards=4
// the conservative-PDES loop itself.
var metricDefs = map[string]metricDef{
	"stream":      {bench: "BenchmarkRunCalls", variant: "stream", unit: "calls/sec", key: "run_calls_stream_calls_per_sec"},
	"replay":      {bench: "BenchmarkRunCalls", variant: "replay", unit: "calls/sec", key: "run_calls_replay_calls_per_sec"},
	"shard-seq":   {bench: "BenchmarkRunShardedCalls", variant: "shards=1", unit: "calls/sec", key: "run_sharded_seq_calls_per_sec"},
	"shard-multi": {bench: "BenchmarkRunShardedCalls", variant: "shards=4", unit: "calls/sec", key: "run_sharded_multi_calls_per_sec"},
}

func metricNames() []string {
	names := make([]string, 0, len(metricDefs))
	for n := range metricDefs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// selection is one guarded metric: its allowlist name plus the
// regression budget it is held to (the per-metric floor).
type selection struct {
	name    string
	regress float64
}

// metricFlags parses repeated -metric values of the form "name" or
// "name=maxRegress". A negative regress means "use the global
// -max-regress"; resolve() pins it once flags are parsed.
type metricFlags struct {
	sels []selection
}

func (m *metricFlags) String() string {
	parts := make([]string, len(m.sels))
	for i, s := range m.sels {
		parts[i] = s.name
	}
	return strings.Join(parts, ",")
}

func (m *metricFlags) Set(v string) error {
	name, frac, hasFrac := strings.Cut(v, "=")
	if _, ok := metricDefs[name]; !ok {
		return fmt.Errorf("unknown metric %q (allowed: %s)", name, strings.Join(metricNames(), ", "))
	}
	for _, s := range m.sels {
		if s.name == name {
			return fmt.Errorf("metric %q selected twice", name)
		}
	}
	sel := selection{name: name, regress: -1}
	if hasFrac {
		f, err := strconv.ParseFloat(frac, 64)
		if err != nil || f < 0 || f >= 1 {
			return fmt.Errorf("metric %q: max-regress %q must be a fraction in [0, 1)", name, frac)
		}
		sel.regress = f
	}
	m.sels = append(m.sels, sel)
	return nil
}

// resolve fills defaults: no -metric flags selects the classic pair, and
// metrics without their own budget inherit the global one.
func (m *metricFlags) resolve(maxRegress float64) []selection {
	sels := m.sels
	if len(sels) == 0 {
		sels = []selection{{name: "replay", regress: -1}, {name: "stream", regress: -1}}
	}
	out := make([]selection, len(sels))
	for i, s := range sels {
		if s.regress < 0 {
			s.regress = maxRegress
		}
		out[i] = s
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// parseBench scans benchmark output for the selected metrics, echoing
// every line to echo, and returns the best observed value per metric
// name.
func parseBench(r io.Reader, echo io.Writer, sels []selection) (map[string]float64, error) {
	best := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if echo != nil {
			fmt.Fprintln(echo, line)
		}
		for _, s := range sels {
			def := metricDefs[s.name]
			rest, ok := strings.CutPrefix(line, def.bench+"/")
			if !ok {
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				continue
			}
			// The name field is "<variant>" on a single-CPU host and
			// "<variant>-<GOMAXPROCS>" otherwise; no allowed variant ends in
			// a dash-suffixed token, so trimming at the last dash is safe.
			variant := fields[0]
			if i := strings.LastIndex(variant, "-"); i >= 0 {
				variant = variant[:i]
			}
			if variant != def.variant {
				continue
			}
			for i := 1; i < len(fields); i++ {
				if fields[i] != def.unit {
					continue
				}
				v, err := strconv.ParseFloat(fields[i-1], 64)
				if err != nil {
					return nil, fmt.Errorf("unparsable %s in %q: %v", def.unit, line, err)
				}
				if v > best[s.name] {
					best[s.name] = v
				}
				break
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return best, nil
}

// baselineBest extracts the best recorded value per selected metric from
// the baseline file's "optimized" block, accepting both a single number
// and a best-of-count array per key.
func baselineBest(data []byte, sels []selection) (map[string]float64, error) {
	var file struct {
		Optimized map[string]json.RawMessage `json:"optimized"`
	}
	if err := json.Unmarshal(data, &file); err != nil {
		return nil, err
	}
	out := make(map[string]float64)
	for _, s := range sels {
		key := metricDefs[s.name].key
		raw, ok := file.Optimized[key]
		if !ok {
			return nil, fmt.Errorf("baseline is missing optimized.%s", key)
		}
		var vals []float64
		if err := json.Unmarshal(raw, &vals); err != nil {
			var v float64
			if err := json.Unmarshal(raw, &v); err != nil {
				return nil, fmt.Errorf("optimized.%s is neither a number nor an array", key)
			}
			vals = []float64{v}
		}
		b := 0.0
		for _, v := range vals {
			if v > b {
				b = v
			}
		}
		if b <= 0 {
			return nil, fmt.Errorf("optimized.%s has no positive value", key)
		}
		out[s.name] = b
	}
	return out, nil
}

// check compares observed against baseline under each metric's own
// regression budget and returns one human-readable verdict line per
// metric plus the overall pass/fail. Missing metrics fail: a guard that
// matched no benchmark output must not pass vacuously.
func check(observed, baseline map[string]float64, sels []selection) ([]string, bool) {
	var lines []string
	ok := true
	for _, s := range sels {
		def := metricDefs[s.name]
		base := baseline[s.name]
		got, seen := observed[s.name]
		if !seen {
			lines = append(lines, fmt.Sprintf("benchguard: %s: no %s/%s result in input", s.name, def.bench, def.variant))
			ok = false
			continue
		}
		floor := base * (1 - s.regress)
		delta := got/base - 1
		verdict := "ok"
		if got < floor {
			verdict = fmt.Sprintf("FAIL (below the %.0f%% floor %.0f)", 100*(1-s.regress), floor)
			ok = false
		}
		lines = append(lines, fmt.Sprintf("benchguard: %s: %.0f %s vs baseline %.0f (%+.1f%%): %s",
			s.name, got, def.unit, base, 100*delta, verdict))
	}
	return lines, ok
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_sim.json", "recorded benchmark baseline to compare against")
	maxRegress := flag.Float64("max-regress", 0.30, "default maximum tolerated regression as a fraction")
	var metrics metricFlags
	flag.Var(&metrics, "metric", "metric to guard, `name[=maxRegress]` (repeatable; allowed: "+
		strings.Join(metricNames(), ", ")+"; default: replay, stream)")
	flag.Parse()
	if *maxRegress < 0 || *maxRegress >= 1 {
		fmt.Fprintln(os.Stderr, "benchguard: -max-regress must be in [0, 1)")
		os.Exit(2)
	}
	sels := metrics.resolve(*maxRegress)
	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	baseline, err := baselineBest(data, sels)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %s: %v\n", *baselinePath, err)
		os.Exit(2)
	}
	observed, err := parseBench(os.Stdin, os.Stdout, sels)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	lines, ok := check(observed, baseline, sels)
	for _, l := range lines {
		fmt.Fprintln(os.Stderr, l)
	}
	if !ok {
		os.Exit(1)
	}
}
