package main

import (
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkRunCalls/stream-8         	       2	 510000000 ns/op	   2000000 calls/sec	   0.950 carried/unit	  903219 B/op	     351 allocs/op
BenchmarkRunCalls/stream-8         	       2	 500000000 ns/op	   2100000 calls/sec	   0.950 carried/unit	  903219 B/op	     351 allocs/op
BenchmarkRunCalls/replay-8         	       4	 260000000 ns/op	   3300000 calls/sec	   0.950 carried/unit	  168936 B/op	      71 allocs/op
BenchmarkRunCalls/replay         	       4	 250000000 ns/op	   3400000 calls/sec	   0.950 carried/unit	  168936 B/op	      71 allocs/op
BenchmarkEq15Search/quadrangle@90E/cold-8  	     100	  11000000 ns/op	     312 allocs/op
PASS
`

const sampleBaseline = `{
  "optimized": {
    "run_calls_stream_calls_per_sec": [2096423, 2105578, 1957352],
    "run_calls_replay_calls_per_sec": [3394775, 3340919, 3382691]
  }
}`

func TestParseBenchBestPerVariant(t *testing.T) {
	var echo strings.Builder
	got, err := parseBench(strings.NewReader(sampleBench), &echo)
	if err != nil {
		t.Fatal(err)
	}
	if got["stream"] != 2100000 || got["replay"] != 3400000 {
		t.Fatalf("best = %v, want stream=2100000 replay=3400000", got)
	}
	if echo.String() != sampleBench {
		t.Error("input was not echoed verbatim")
	}
}

func TestBaselineBest(t *testing.T) {
	got, err := baselineBest([]byte(sampleBaseline))
	if err != nil {
		t.Fatal(err)
	}
	if got["stream"] != 2105578 || got["replay"] != 3394775 {
		t.Fatalf("baseline best = %v", got)
	}
	// Scalar form is accepted too.
	got, err = baselineBest([]byte(`{"optimized": {
		"run_calls_stream_calls_per_sec": 100,
		"run_calls_replay_calls_per_sec": 200}}`))
	if err != nil {
		t.Fatal(err)
	}
	if got["stream"] != 100 || got["replay"] != 200 {
		t.Fatalf("scalar baseline best = %v", got)
	}
	if _, err := baselineBest([]byte(`{"optimized": {}}`)); err == nil {
		t.Error("missing keys should be an error")
	}
	if _, err := baselineBest([]byte(`{"optimized": {
		"run_calls_stream_calls_per_sec": 0,
		"run_calls_replay_calls_per_sec": 200}}`)); err == nil {
		t.Error("non-positive baseline should be an error")
	}
}

func TestCheckThreshold(t *testing.T) {
	baseline := map[string]float64{"stream": 2000000, "replay": 3000000}
	cases := []struct {
		name     string
		observed map[string]float64
		ok       bool
	}{
		{"all good", map[string]float64{"stream": 1900000, "replay": 3100000}, true},
		{"at the floor", map[string]float64{"stream": 1400000, "replay": 2100000}, true},
		{"one regressed", map[string]float64{"stream": 1399999, "replay": 3000000}, false},
		{"missing variant", map[string]float64{"replay": 3000000}, false},
		{"empty input", map[string]float64{}, false},
	}
	for _, tc := range cases {
		lines, ok := check(tc.observed, baseline, 0.30)
		if ok != tc.ok {
			t.Errorf("%s: ok=%v, want %v (%v)", tc.name, ok, tc.ok, lines)
		}
		if len(lines) != 2 {
			t.Errorf("%s: want one verdict line per baseline variant, got %v", tc.name, lines)
		}
	}
}
