package main

import (
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkRunCalls/stream-8         	       2	 510000000 ns/op	   2000000 calls/sec	   0.950 carried/unit	  903219 B/op	     351 allocs/op
BenchmarkRunCalls/stream-8         	       2	 500000000 ns/op	   2100000 calls/sec	   0.950 carried/unit	  903219 B/op	     351 allocs/op
BenchmarkRunCalls/replay-8         	       4	 260000000 ns/op	   3300000 calls/sec	   0.950 carried/unit	  168936 B/op	      71 allocs/op
BenchmarkRunCalls/replay         	       4	 250000000 ns/op	   3400000 calls/sec	   0.950 carried/unit	  168936 B/op	      71 allocs/op
BenchmarkRunShardedCalls/shards=1-8 	       4	 250000000 ns/op	   3100000 calls/sec	   0.950 carried/unit
BenchmarkRunShardedCalls/shards=4   	       4	 280000000 ns/op	   2900000 calls/sec	   0.950 carried/unit
BenchmarkEq15Search/quadrangle@90E/cold-8  	     100	  11000000 ns/op	     312 allocs/op
PASS
`

const sampleBaseline = `{
  "optimized": {
    "run_calls_stream_calls_per_sec": [2096423, 2105578, 1957352],
    "run_calls_replay_calls_per_sec": [3394775, 3340919, 3382691],
    "run_sharded_seq_calls_per_sec": 3000000,
    "run_sharded_multi_calls_per_sec": [2800000, 2750000]
  }
}`

// classicPair mirrors resolve()'s default selection at a 30% budget.
func classicPair() []selection {
	var m metricFlags
	return m.resolve(0.30)
}

func TestMetricFlagParsing(t *testing.T) {
	var m metricFlags
	for _, v := range []string{"stream", "replay=0.10", "shard-seq=0.05"} {
		if err := m.Set(v); err != nil {
			t.Fatalf("Set(%q): %v", v, err)
		}
	}
	sels := m.resolve(0.30)
	want := map[string]float64{"replay": 0.10, "shard-seq": 0.05, "stream": 0.30}
	if len(sels) != len(want) {
		t.Fatalf("resolve: %v", sels)
	}
	for i, s := range sels {
		if want[s.name] != s.regress {
			t.Errorf("sel[%d] = %+v, want regress %v", i, s, want[s.name])
		}
	}
	for _, bad := range []string{"nosuch", "stream", "shard-multi=1.5", "replay=x"} {
		if err := m.Set(bad); err == nil {
			t.Errorf("Set(%q) accepted", bad)
		}
	}
	// Defaults: the classic pair under the global budget.
	def := classicPair()
	if len(def) != 2 || def[0].name != "replay" || def[1].name != "stream" ||
		def[0].regress != 0.30 || def[1].regress != 0.30 {
		t.Fatalf("default selection = %+v", def)
	}
}

func TestParseBenchBestPerMetric(t *testing.T) {
	var echo strings.Builder
	var m metricFlags
	for _, v := range []string{"stream", "replay", "shard-seq", "shard-multi"} {
		if err := m.Set(v); err != nil {
			t.Fatal(err)
		}
	}
	got, err := parseBench(strings.NewReader(sampleBench), &echo, m.resolve(0.30))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"stream": 2100000, "replay": 3400000,
		"shard-seq": 3100000, "shard-multi": 2900000,
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("best[%s] = %v, want %v", k, got[k], v)
		}
	}
	if echo.String() != sampleBench {
		t.Error("input was not echoed verbatim")
	}
}

func TestBaselineBest(t *testing.T) {
	var m metricFlags
	for _, v := range []string{"stream", "replay", "shard-seq", "shard-multi"} {
		if err := m.Set(v); err != nil {
			t.Fatal(err)
		}
	}
	sels := m.resolve(0.30)
	got, err := baselineBest([]byte(sampleBaseline), sels)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"stream": 2105578, "replay": 3394775,
		"shard-seq": 3000000, "shard-multi": 2800000,
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("baseline best[%s] = %v, want %v", k, got[k], v)
		}
	}
	// Scalar form is accepted too.
	got, err = baselineBest([]byte(`{"optimized": {
		"run_calls_stream_calls_per_sec": 100,
		"run_calls_replay_calls_per_sec": 200}}`), classicPair())
	if err != nil {
		t.Fatal(err)
	}
	if got["stream"] != 100 || got["replay"] != 200 {
		t.Fatalf("scalar baseline best = %v", got)
	}
	if _, err := baselineBest([]byte(`{"optimized": {}}`), classicPair()); err == nil {
		t.Error("missing keys should be an error")
	}
	if _, err := baselineBest([]byte(`{"optimized": {
		"run_calls_stream_calls_per_sec": 0,
		"run_calls_replay_calls_per_sec": 200}}`), classicPair()); err == nil {
		t.Error("non-positive baseline should be an error")
	}
	// A selected metric missing from the file is an error even when the
	// classic pair is present.
	if _, err := baselineBest([]byte(sampleBaseline), []selection{{name: "shard-seq"}, {name: "stream"}}); err != nil {
		t.Errorf("selected metrics present in file: %v", err)
	}
	if _, err := baselineBest([]byte(`{"optimized": {
		"run_calls_stream_calls_per_sec": 100}}`), []selection{{name: "shard-seq"}}); err == nil {
		t.Error("missing selected metric should be an error")
	}
}

func TestCheckThreshold(t *testing.T) {
	baseline := map[string]float64{"stream": 2000000, "replay": 3000000}
	cases := []struct {
		name     string
		observed map[string]float64
		ok       bool
	}{
		{"all good", map[string]float64{"stream": 1900000, "replay": 3100000}, true},
		{"at the floor", map[string]float64{"stream": 1400000, "replay": 2100000}, true},
		{"one regressed", map[string]float64{"stream": 1399999, "replay": 3000000}, false},
		{"missing variant", map[string]float64{"replay": 3000000}, false},
		{"empty input", map[string]float64{}, false},
	}
	for _, tc := range cases {
		lines, ok := check(tc.observed, baseline, classicPair())
		if ok != tc.ok {
			t.Errorf("%s: ok=%v, want %v (%v)", tc.name, ok, tc.ok, lines)
		}
		if len(lines) != 2 {
			t.Errorf("%s: want one verdict line per guarded metric, got %v", tc.name, lines)
		}
	}
}

// TestCheckPerMetricFloors: the same observation passes or fails
// depending on each metric's own budget.
func TestCheckPerMetricFloors(t *testing.T) {
	baseline := map[string]float64{"shard-seq": 1000000, "shard-multi": 1000000}
	observed := map[string]float64{"shard-seq": 900000, "shard-multi": 900000}
	lines, ok := check(observed, baseline, []selection{
		{name: "shard-multi", regress: 0.30},
		{name: "shard-seq", regress: 0.30},
	})
	if !ok {
		t.Fatalf("10%% drop under a 30%% budget should pass: %v", lines)
	}
	lines, ok = check(observed, baseline, []selection{
		{name: "shard-multi", regress: 0.30},
		{name: "shard-seq", regress: 0.05},
	})
	if ok {
		t.Fatalf("10%% drop under a 5%% budget should fail: %v", lines)
	}
	if len(lines) != 2 || !strings.Contains(lines[1], "FAIL") || strings.Contains(lines[0], "FAIL") {
		t.Fatalf("expected only shard-seq to fail: %v", lines)
	}
}
