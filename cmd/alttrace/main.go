// Command alttrace is the trace-analytics companion to altsim: it folds the
// JSONL event streams written by `altsim -events` into per-run summaries and
// fixed-width windowed time series, and diffs two traces when the golden
// bit-identity contract breaks.
//
// Usage:
//
//	alttrace fold    [-window W] [-csv out.csv] [-metrics snapshot.json] trace.jsonl...
//	alttrace diff    [-window W] a.jsonl b.jsonl
//	alttrace regimes [-window W] [-low B] [-high B] [-dwell N] trace.jsonl...
//
// fold prints one summary line per run, re-aggregated losslessly from the
// event stream (obs.Aggregate), so the counters equal the originating run's
// sim.Result exactly; -csv additionally writes every windowed series row,
// and -metrics cross-checks the summed totals against a registry snapshot
// written by `altsim -metrics`, exiting nonzero on any mismatch.
//
// diff reports the first raw-line divergence between two traces (line
// number and both lines), then folds both and reports the first differing
// window of each run — turning "the golden test failed" into "seed 3
// diverged in window 17". Exit status: 0 identical, 1 different, 2 error.
//
// regimes runs the two-level hysteresis detector over each trace's windowed
// blocking and prints the confirmed regime shifts (see
// internal/obs/timeseries).
package main

import (
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var code int
	switch os.Args[1] {
	case "fold":
		code = runFold(os.Stdout, os.Stderr, os.Args[2:])
	case "diff":
		code = runDiff(os.Stdout, os.Stderr, os.Args[2:])
	case "regimes":
		code = runRegimes(os.Stdout, os.Stderr, os.Args[2:])
	default:
		usage()
		code = 2
	}
	os.Exit(code)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: alttrace <command> [flags] trace.jsonl...
commands:
  fold     [-window W] [-csv out.csv] [-metrics snapshot.json] trace.jsonl...
  diff     [-window W] a.jsonl b.jsonl
  regimes  [-window W] [-low B] [-high B] [-dwell N] trace.jsonl...`)
}
