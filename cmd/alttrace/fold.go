package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"repro/internal/obs"
	"repro/internal/obs/timeseries"
)

// foldResult is one trace file folded both ways: lossless per-run totals
// (obs.Aggregate — the sim.Result reconstruction) and the windowed series.
type foldResult struct {
	file   string
	totals []obs.RunTotals
	series []timeseries.RunSeries
}

// foldTrace reads one JSONL event stream and folds it.
func foldTrace(r io.Reader, file string, width float64) (foldResult, error) {
	events, err := obs.ReadJSONL(r)
	if err != nil {
		return foldResult{}, fmt.Errorf("%s: %w", file, err)
	}
	series, err := timeseries.FoldEvents(events, timeseries.Options{Width: width})
	if err != nil {
		return foldResult{}, err
	}
	return foldResult{file: file, totals: obs.Aggregate(events), series: series}, nil
}

// runFold implements `alttrace fold`.
func runFold(stdout, stderr io.Writer, args []string) int {
	fs := flag.NewFlagSet("alttrace fold", flag.ContinueOnError)
	fs.SetOutput(stderr)
	window := fs.Float64("window", 5, "series window width (simulated time units)")
	csvPath := fs.String("csv", "", "write per-window series rows as CSV to this file")
	metricsPath := fs.String("metrics", "", "cross-check summed totals against this registry snapshot JSON")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	files := fs.Args()
	if len(files) == 0 {
		fmt.Fprintln(stderr, "alttrace fold: no trace files given")
		return 2
	}

	var results []foldResult
	for _, file := range files {
		f, err := os.Open(file)
		if err != nil {
			fmt.Fprintln(stderr, "alttrace:", err)
			return 2
		}
		res, err := foldTrace(f, file, *window)
		f.Close()
		if err != nil {
			fmt.Fprintln(stderr, "alttrace:", err)
			return 2
		}
		results = append(results, res)
		writeSummary(stdout, res)
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(stderr, "alttrace:", err)
			return 2
		}
		err = writeSeriesCSV(f, results)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(stderr, "alttrace:", err)
			return 2
		}
		fmt.Fprintf(stderr, "alttrace: wrote %s\n", *csvPath)
	}

	if *metricsPath != "" {
		f, err := os.Open(*metricsPath)
		if err != nil {
			fmt.Fprintln(stderr, "alttrace:", err)
			return 2
		}
		var snap obs.Snapshot
		err = json.NewDecoder(f).Decode(&snap)
		f.Close()
		if err != nil {
			fmt.Fprintf(stderr, "alttrace: %s: %v\n", *metricsPath, err)
			return 2
		}
		mismatches := compareSnapshot(snap, results)
		if len(mismatches) > 0 {
			for _, m := range mismatches {
				fmt.Fprintf(stderr, "alttrace: metrics mismatch: %s\n", m)
			}
			return 1
		}
		fmt.Fprintf(stdout, "metrics cross-check: %s agrees with the folded totals\n", *metricsPath)
	}
	return 0
}

// writeSummary prints one line per run with the re-aggregated counters.
func writeSummary(w io.Writer, res foldResult) {
	for i, t := range res.totals {
		windows := 0
		if i < len(res.series) {
			windows = len(res.series[i].Windows)
		}
		fmt.Fprintf(w,
			"%s run %d: policy=%s seed=%d offered=%d accepted=%d blocked=%d blocking=%s primary=%d alternate=%d hops=%d departed=%d",
			res.file, i, t.Policy, t.Seed, t.Offered, t.Accepted, t.Blocked,
			formatFloat(t.Blocking()), t.PrimaryAccepted, t.AlternateAccepted,
			t.CarriedHopCount, t.Departed)
		if t.LostToFailure > 0 || t.FailureRerouted > 0 || t.LinkDowns > 0 || t.LinkUps > 0 {
			fmt.Fprintf(w, " lost-failure=%d rerouted=%d link-downs=%d link-ups=%d",
				t.LostToFailure, t.FailureRerouted, t.LinkDowns, t.LinkUps)
		}
		fmt.Fprintf(w, " windows=%d\n", windows)
	}
}

// csvHeader is the windowed-series schema written by fold -csv.
var csvHeader = []string{
	"file", "run", "policy", "seed",
	"window", "start", "end", "offered", "blocked", "blocking",
	"accepted", "primary", "alternate", "alt_share", "carried_hops",
	"departed", "lost_failure", "rerouted", "link_downs", "link_ups",
	"events", "partial",
}

// writeSeriesCSV writes every window of every run of every trace as one row.
func writeSeriesCSV(w io.Writer, results []foldResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, res := range results {
		for _, r := range res.series {
			for _, win := range r.Windows {
				row := []string{
					res.file,
					strconv.Itoa(r.Run),
					r.Policy,
					strconv.FormatInt(r.Seed, 10),
					strconv.Itoa(win.Index),
					formatFloat(win.Start),
					formatFloat(win.End),
					strconv.FormatInt(win.Offered, 10),
					strconv.FormatInt(win.Blocked, 10),
					formatFloat(win.Blocking()),
					strconv.FormatInt(win.Accepted, 10),
					strconv.FormatInt(win.PrimaryAccepted, 10),
					strconv.FormatInt(win.AlternateAccepted, 10),
					formatFloat(win.AlternateShare()),
					strconv.FormatInt(win.CarriedHops, 10),
					strconv.FormatInt(win.Departed, 10),
					strconv.FormatInt(win.LostToFailure, 10),
					strconv.FormatInt(win.FailureRerouted, 10),
					strconv.FormatInt(win.LinkDowns, 10),
					strconv.FormatInt(win.LinkUps, 10),
					strconv.FormatInt(win.Events, 10),
					strconv.FormatBool(win.Partial),
				}
				if err := cw.Write(row); err != nil {
					return err
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// compareSnapshot checks a registry snapshot against the summed folded
// totals field by field and returns human-readable mismatch descriptions
// (empty when they agree exactly). The snapshot's carried-hops histogram is
// compared by its weighted sum, which equals the summed CarriedHopCount as
// long as no path clamps into the last bucket.
func compareSnapshot(snap obs.Snapshot, results []foldResult) []string {
	var sum obs.RunTotals
	runs := 0
	for _, res := range results {
		for _, t := range res.totals {
			runs++
			sum.Offered += t.Offered
			sum.Accepted += t.Accepted
			sum.Blocked += t.Blocked
			sum.PrimaryAccepted += t.PrimaryAccepted
			sum.AlternateAccepted += t.AlternateAccepted
			sum.CarriedHopCount += t.CarriedHopCount
			sum.Departed += t.Departed
			sum.LostToFailure += t.LostToFailure
			sum.FailureRerouted += t.FailureRerouted
			sum.LinkDowns += t.LinkDowns
			sum.LinkUps += t.LinkUps
		}
	}
	var hopSum int64
	for hops, count := range snap.CarriedHops {
		hopSum += int64(hops) * count
	}

	var out []string
	mismatch := func(field string, got, want int64) {
		if got != want {
			out = append(out, fmt.Sprintf("%s: snapshot %d, folded %d", field, got, want))
		}
	}
	mismatch("runs", snap.Runs, int64(runs))
	mismatch("offered", snap.Offered, sum.Offered)
	mismatch("accepted", snap.Accepted, sum.Accepted)
	mismatch("blocked", snap.Blocked, sum.Blocked)
	mismatch("primary_accepted", snap.PrimaryAccepted, sum.PrimaryAccepted)
	mismatch("alternate_accepted", snap.AlternateAccepted, sum.AlternateAccepted)
	mismatch("carried_hops", hopSum, sum.CarriedHopCount)
	mismatch("departed", snap.Departed, sum.Departed)
	mismatch("lost_to_failure", snap.LostToFailure, sum.LostToFailure)
	mismatch("failure_rerouted", snap.FailureRerouted, sum.FailureRerouted)
	mismatch("link_downs", snap.LinkDowns, int64(sum.LinkDowns))
	mismatch("link_ups", snap.LinkUps, int64(sum.LinkUps))
	return out
}

// formatFloat renders a float in shortest round-trip form (NaN for
// undefined ratios), matching the JSONL stream's own number formatting.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
