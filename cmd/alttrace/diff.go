package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/obs/timeseries"
)

// runDiff implements `alttrace diff`: raw first-divergence reporting, then
// a window-by-window comparison of the two folded series.
func runDiff(stdout, stderr io.Writer, args []string) int {
	fs := flag.NewFlagSet("alttrace diff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	window := fs.Float64("window", 5, "series window width (simulated time units)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "alttrace diff: want exactly two trace files")
		return 2
	}
	fileA, fileB := fs.Arg(0), fs.Arg(1)
	rawA, err := os.ReadFile(fileA)
	if err != nil {
		fmt.Fprintln(stderr, "alttrace:", err)
		return 2
	}
	rawB, err := os.ReadFile(fileB)
	if err != nil {
		fmt.Fprintln(stderr, "alttrace:", err)
		return 2
	}

	if bytes.Equal(rawA, rawB) {
		fmt.Fprintf(stdout, "traces identical (%d bytes, %d lines)\n", len(rawA), countLines(rawA))
		return 0
	}

	line, a, b := firstDivergence(rawA, rawB)
	fmt.Fprintf(stdout, "traces differ; first divergence at line %d:\n", line)
	fmt.Fprintf(stdout, "  %s: %s\n", fileA, a)
	fmt.Fprintf(stdout, "  %s: %s\n", fileB, b)

	resA, err := foldTrace(bytes.NewReader(rawA), fileA, *window)
	if err != nil {
		fmt.Fprintln(stderr, "alttrace:", err)
		return 2
	}
	resB, err := foldTrace(bytes.NewReader(rawB), fileB, *window)
	if err != nil {
		fmt.Fprintln(stderr, "alttrace:", err)
		return 2
	}
	diffSeries(stdout, resA, resB)
	return 1
}

// countLines counts newline-terminated lines.
func countLines(b []byte) int {
	return bytes.Count(b, []byte("\n"))
}

// firstDivergence returns the 1-based line number and both lines at the
// first point the raw streams disagree. A stream that ends early reports
// "<end of file>" for its side.
func firstDivergence(rawA, rawB []byte) (int, string, string) {
	sa := bufio.NewScanner(bytes.NewReader(rawA))
	sb := bufio.NewScanner(bytes.NewReader(rawB))
	sa.Buffer(make([]byte, 0, 64*1024), 1<<20)
	sb.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for {
		line++
		moreA, moreB := sa.Scan(), sb.Scan()
		switch {
		case moreA && moreB:
			if sa.Text() != sb.Text() {
				return line, sa.Text(), sb.Text()
			}
		case moreA:
			return line, sa.Text(), "<end of file>"
		case moreB:
			return line, "<end of file>", sb.Text()
		default:
			// Byte-unequal but line-equal: trailing bytes differ (e.g. a
			// missing final newline).
			return line, "<end of file>", "<end of file>"
		}
	}
}

// diffSeries compares the folded window series run by run and reports the
// first differing window of each run plus totals.
func diffSeries(w io.Writer, a, b foldResult) {
	if len(a.series) != len(b.series) {
		fmt.Fprintf(w, "run counts differ: %s has %d, %s has %d\n",
			a.file, len(a.series), b.file, len(b.series))
	}
	n := len(a.series)
	if len(b.series) < n {
		n = len(b.series)
	}
	for i := 0; i < n; i++ {
		ra, rb := a.series[i], b.series[i]
		if ra.Policy != rb.Policy || ra.Seed != rb.Seed {
			fmt.Fprintf(w, "run %d identity differs: %s=%s/seed=%d, %s=%s/seed=%d\n",
				i, a.file, ra.Policy, ra.Seed, b.file, rb.Policy, rb.Seed)
			continue
		}
		diffRun(w, i, ra, rb)
	}
}

// diffRun reports window-level divergence inside one run.
func diffRun(w io.Writer, run int, a, b timeseries.RunSeries) {
	if len(a.Windows) != len(b.Windows) {
		fmt.Fprintf(w, "run %d (%s seed %d): window counts differ (%d vs %d)\n",
			run, a.Policy, a.Seed, len(a.Windows), len(b.Windows))
	}
	n := len(a.Windows)
	if len(b.Windows) < n {
		n = len(b.Windows)
	}
	differing := 0
	first := -1
	for k := 0; k < n; k++ {
		if !windowsEqual(a.Windows[k], b.Windows[k]) {
			if first < 0 {
				first = k
			}
			differing++
		}
	}
	if differing == 0 {
		if len(a.Windows) == len(b.Windows) {
			fmt.Fprintf(w, "run %d (%s seed %d): %d windows identical\n",
				run, a.Policy, a.Seed, len(a.Windows))
		}
		return
	}
	wa, wb := a.Windows[first], b.Windows[first]
	fmt.Fprintf(w, "run %d (%s seed %d): %d of %d windows differ; first is window %d [%s,%s):\n",
		run, a.Policy, a.Seed, differing, n, wa.Index, formatFloat(wa.Start), formatFloat(wa.End))
	fmt.Fprintf(w, "  a: offered=%d blocked=%d accepted=%d alternate=%d departed=%d events=%d\n",
		wa.Offered, wa.Blocked, wa.Accepted, wa.AlternateAccepted, wa.Departed, wa.Events)
	fmt.Fprintf(w, "  b: offered=%d blocked=%d accepted=%d alternate=%d departed=%d events=%d\n",
		wb.Offered, wb.Blocked, wb.Accepted, wb.AlternateAccepted, wb.Departed, wb.Events)
}

// windowsEqual compares two windows exactly, floats bit for bit.
func windowsEqual(a, b timeseries.Window) bool {
	if a.Index != b.Index ||
		math.Float64bits(a.Start) != math.Float64bits(b.Start) ||
		math.Float64bits(a.End) != math.Float64bits(b.End) ||
		a.Offered != b.Offered || a.Blocked != b.Blocked ||
		a.Accepted != b.Accepted || a.PrimaryAccepted != b.PrimaryAccepted ||
		a.AlternateAccepted != b.AlternateAccepted || a.CarriedHops != b.CarriedHops ||
		a.Departed != b.Departed || a.LostToFailure != b.LostToFailure ||
		a.FailureRerouted != b.FailureRerouted || a.LinkDowns != b.LinkDowns ||
		a.LinkUps != b.LinkUps || a.Events != b.Events || a.Partial != b.Partial ||
		len(a.LinkUtil) != len(b.LinkUtil) {
		return false
	}
	for i := range a.LinkUtil {
		if math.Float64bits(a.LinkUtil[i]) != math.Float64bits(b.LinkUtil[i]) {
			return false
		}
	}
	return true
}
