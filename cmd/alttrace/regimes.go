package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/obs"
	"repro/internal/obs/timeseries"
)

// runRegimes implements `alttrace regimes`: it re-derives the windowed
// blocking series of each trace and prints the regime shifts confirmed by
// the two-level hysteresis detector.
func runRegimes(stdout, stderr io.Writer, args []string) int {
	fs := flag.NewFlagSet("alttrace regimes", flag.ContinueOnError)
	fs.SetOutput(stderr)
	window := fs.Float64("window", 5, "series window width (simulated time units)")
	low := fs.Float64("low", timeseries.DefaultLowThreshold, "low-regime blocking ceiling")
	high := fs.Float64("high", timeseries.DefaultHighThreshold, "high-regime blocking floor")
	dwell := fs.Int("dwell", timeseries.DefaultDwell, "consecutive windows confirming a shift")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	files := fs.Args()
	if len(files) == 0 {
		fmt.Fprintln(stderr, "alttrace regimes: no trace files given")
		return 2
	}
	cfg := timeseries.DetectorConfig{Low: *low, High: *high, Dwell: *dwell}
	for _, file := range files {
		f, err := os.Open(file)
		if err != nil {
			fmt.Fprintln(stderr, "alttrace:", err)
			return 2
		}
		events, err := obs.ReadJSONL(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(stderr, "alttrace: %s: %v\n", file, err)
			return 2
		}
		series, err := timeseries.FoldEvents(events, timeseries.Options{Width: *window, Detector: &cfg})
		if err != nil {
			fmt.Fprintln(stderr, "alttrace:", err)
			return 2
		}
		for _, r := range series {
			fmt.Fprintf(stdout, "%s run %d: policy=%s seed=%d windows=%d shifts=%d\n",
				file, r.Run, r.Policy, r.Seed, len(r.Windows), len(r.Shifts))
			for _, s := range r.Shifts {
				fmt.Fprintf(stdout, "  window %d t=%s: %s -> %s (blocking %s)\n",
					s.Window, formatFloat(s.Time), s.From, s.To, formatFloat(s.Blocking))
			}
		}
	}
	return 0
}
