package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/netmodel"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/traffic"
)

// goldenCase mirrors the golden suite's topology grid (internal/sim).
type goldenCase struct {
	name     string
	policies map[string]sim.Policy
	m        *traffic.Matrix
	cfg      sim.Config
}

func goldenCases(t *testing.T) []goldenCase {
	t.Helper()
	nm, _, err := traffic.NSFNetNominal()
	if err != nil {
		t.Fatal(err)
	}
	quad, ring, nsf := netmodel.Quadrangle(), netmodel.Ring(6, 30), netmodel.NSFNet()
	quadM, ringM := traffic.Uniform(4, 90), traffic.Uniform(6, 12)
	return []goldenCase{
		{"quadrangle-90E", goldenPoliciesFor(t, quad, quadM, 0), quadM,
			sim.Config{Graph: quad, Warmup: 1, Horizon: 6}},
		{"ring6", goldenPoliciesFor(t, ring, ringM, 0), ringM,
			sim.Config{Graph: ring, Warmup: 2, Horizon: 10}},
		{"nsfnet-nominal", goldenPoliciesFor(t, nsf, nm, 11), nm,
			sim.Config{Graph: nsf, Warmup: 2, Horizon: 10}},
	}
}

func goldenPoliciesFor(t *testing.T, g *graph.Graph, m *traffic.Matrix, h int) map[string]sim.Policy {
	t.Helper()
	scheme, err := core.New(g, m, core.Options{H: h})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := scheme.OttKrishnan()
	if err != nil {
		t.Fatal(err)
	}
	return map[string]sim.Policy{
		"single-path":  scheme.SinglePath(),
		"uncontrolled": scheme.Uncontrolled(),
		"controlled":   scheme.Controlled(),
		"ottkrishnan":  ok,
	}
}

var goldenSeeds = []int64{1, 2, 3, 4, 5}

// TestFoldReproducesResultGolden is the acceptance contract: for every
// golden-suite topology/policy/seed combination, folding the run's JSONL
// trace reproduces the exact sim.Result counters.
func TestFoldReproducesResultGolden(t *testing.T) {
	for _, gc := range goldenCases(t) {
		for pname, pol := range gc.policies {
			for _, seed := range goldenSeeds {
				label := fmt.Sprintf("%s/%s/seed=%d", gc.name, pname, seed)
				trace := sim.GenerateTrace(gc.m, gc.cfg.Horizon, seed)
				var buf bytes.Buffer
				sink := obs.NewJSONL(&buf)
				cfg := gc.cfg
				cfg.Policy = pol
				cfg.Trace = trace
				cfg.Sink = sink
				res, err := sim.Run(cfg)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				if err := sink.Flush(); err != nil {
					t.Fatal(err)
				}
				folded, err := foldTrace(bytes.NewReader(buf.Bytes()), label, 1)
				if err != nil {
					t.Fatalf("%s: fold: %v", label, err)
				}
				if len(folded.totals) != 1 {
					t.Fatalf("%s: %d folded runs, want 1", label, len(folded.totals))
				}
				a := folded.totals[0]
				if a.Policy != res.Policy || a.Seed != seed {
					t.Fatalf("%s: identity (%q,%d), want (%q,%d)", label, a.Policy, a.Seed, res.Policy, seed)
				}
				if a.Offered != res.Offered || a.Accepted != res.Accepted || a.Blocked != res.Blocked ||
					a.PrimaryAccepted != res.PrimaryAccepted ||
					a.AlternateAccepted != res.AlternateAccepted ||
					a.CarriedHopCount != res.CarriedHopCount {
					t.Fatalf("%s: folded %+v disagrees with Result counters (offered=%d accepted=%d blocked=%d)",
						label, a, res.Offered, res.Accepted, res.Blocked)
				}
			}
		}
	}
}

// writeQuadTrace runs one instrumented quadrangle run and returns the trace
// path, a snapshot path, and the run's Result.
func writeQuadTrace(t *testing.T, dir string) (string, string, *sim.Result) {
	t.Helper()
	g, m := netmodel.Quadrangle(), traffic.Uniform(4, 90)
	policies := goldenPoliciesFor(t, g, m, 0)
	trace := sim.GenerateTrace(m, 6, 1)

	reg := obs.NewRegistry()
	var buf bytes.Buffer
	jsonl := obs.NewJSONL(&buf)
	res, err := sim.Run(sim.Config{
		Graph: g, Policy: policies["controlled"], Trace: trace,
		Warmup: 1, Sink: obs.Multi(jsonl, reg), OccupancyEvents: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := jsonl.Flush(); err != nil {
		t.Fatal(err)
	}
	reg.AddSpan(res.Span)

	tracePath := filepath.Join(dir, "quad.jsonl")
	if err := os.WriteFile(tracePath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := reg.WriteJSON(&snap); err != nil {
		t.Fatal(err)
	}
	snapPath := filepath.Join(dir, "metrics.json")
	if err := os.WriteFile(snapPath, snap.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return tracePath, snapPath, res
}

// TestRunFoldEndToEnd drives the fold subcommand with -csv and -metrics on
// a real instrumented run: the summary must agree with the Result, the
// metrics cross-check must pass, and the CSV must carry the full schema.
func TestRunFoldEndToEnd(t *testing.T) {
	dir := t.TempDir()
	tracePath, snapPath, res := writeQuadTrace(t, dir)
	csvPath := filepath.Join(dir, "series.csv")

	var stdout, stderr bytes.Buffer
	code := runFold(&stdout, &stderr, []string{
		"-window", "1", "-csv", csvPath, "-metrics", snapPath, tracePath,
	})
	if code != 0 {
		t.Fatalf("fold exit %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	want := fmt.Sprintf("offered=%d accepted=%d blocked=%d", res.Offered, res.Accepted, res.Blocked)
	if !strings.Contains(out, want) {
		t.Fatalf("summary missing %q:\n%s", want, out)
	}
	if !strings.Contains(out, "metrics cross-check") {
		t.Fatalf("metrics cross-check line missing:\n%s", out)
	}
	csvData, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(csvData)), "\n")
	if lines[0] != strings.Join(csvHeader, ",") {
		t.Fatalf("csv header = %q", lines[0])
	}
	if len(lines) < 2 {
		t.Fatalf("csv has no data rows")
	}

	// A doctored snapshot must fail the cross-check with exit 1.
	var snap obs.Snapshot
	raw, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	snap.Blocked++
	doctored, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	badPath := filepath.Join(dir, "bad-metrics.json")
	if err := os.WriteFile(badPath, doctored, 0o644); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	if code := runFold(&stdout, &stderr, []string{"-metrics", badPath, tracePath}); code != 1 {
		t.Fatalf("doctored metrics: exit %d, want 1\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "metrics mismatch: blocked") {
		t.Fatalf("doctored metrics stderr: %s", stderr.String())
	}
}

// TestRunDiff covers the three diff outcomes: identical traces, diverging
// traces with first-line and window reporting, and bad arguments.
func TestRunDiff(t *testing.T) {
	dir := t.TempDir()
	tracePath, _, _ := writeQuadTrace(t, dir)

	var stdout, stderr bytes.Buffer
	if code := runDiff(&stdout, &stderr, []string{tracePath, tracePath}); code != 0 {
		t.Fatalf("identical diff exit %d: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "traces identical") {
		t.Fatalf("identical diff output: %s", stdout.String())
	}

	// Perturb one admitted event into a blocked one mid-stream.
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(string(raw), "\n")
	changed := -1
	for i, line := range lines {
		if i > len(lines)/2 && strings.Contains(line, `"call-admitted"`) {
			lines[i] = strings.Replace(line, `"call-admitted"`, `"call-blocked"`, 1)
			changed = i
			break
		}
	}
	if changed < 0 {
		t.Fatal("no admitted event found to perturb")
	}
	otherPath := filepath.Join(dir, "perturbed.jsonl")
	if err := os.WriteFile(otherPath, []byte(strings.Join(lines, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	if code := runDiff(&stdout, &stderr, []string{"-window", "1", tracePath, otherPath}); code != 1 {
		t.Fatalf("diverging diff exit %d\nstderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, fmt.Sprintf("first divergence at line %d", changed+1)) {
		t.Fatalf("diff output missing divergence line %d:\n%s", changed+1, out)
	}
	if !strings.Contains(out, "windows differ; first is window") {
		t.Fatalf("diff output missing window report:\n%s", out)
	}

	if code := runDiff(&stdout, &stderr, []string{tracePath}); code != 2 {
		t.Fatalf("one-file diff exit %d, want 2", code)
	}
}

// TestRunRegimes folds a synthetic bistable trace through the CLI and
// checks the shift report.
func TestRunRegimes(t *testing.T) {
	var buf bytes.Buffer
	sink := obs.NewJSONL(&buf)
	obs.Emit(sink, obs.Event{Kind: obs.KindRunStart, Policy: "p", Seed: 9})
	// Three quiet windows, then six congested ones.
	for i := 0; i < 3; i++ {
		at := float64(i) + 0.5
		obs.Emit(sink, obs.Event{Kind: obs.KindCallOffered, Time: at})
		obs.Emit(sink, obs.Event{Kind: obs.KindCallAdmitted, Time: at, Hops: 1})
	}
	for i := 3; i < 9; i++ {
		at := float64(i) + 0.5
		obs.Emit(sink, obs.Event{Kind: obs.KindCallOffered, Time: at})
		obs.Emit(sink, obs.Event{Kind: obs.KindCallBlocked, Time: at})
	}
	obs.Emit(sink, obs.Event{Kind: obs.KindRunEnd, Time: 9})
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bistable.jsonl")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	var stdout, stderr bytes.Buffer
	code := runRegimes(&stdout, &stderr, []string{"-window", "1", "-dwell", "2", path})
	if code != 0 {
		t.Fatalf("regimes exit %d: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "shifts=2") {
		t.Fatalf("regimes output missing shifts=2:\n%s", out)
	}
	if !strings.Contains(out, "unknown -> low") || !strings.Contains(out, "low -> high") {
		t.Fatalf("regimes output missing shift lines:\n%s", out)
	}
}
