package main

import (
	"reflect"
	"testing"
)

func TestParseLoads(t *testing.T) {
	got, err := parseLoads("8, 10 ,12.5")
	if err != nil {
		t.Fatal(err)
	}
	if want := []float64{8, 10, 12.5}; !reflect.DeepEqual(got, want) {
		t.Errorf("parseLoads = %v, want %v", got, want)
	}
	empty, err := parseLoads("")
	if err != nil || empty != nil {
		t.Errorf("empty: %v %v", empty, err)
	}
	if _, err := parseLoads("8,x"); err == nil {
		t.Error("bad token: want error")
	}
}

func TestPick(t *testing.T) {
	if pick(0, 11) != 11 || pick(6, 11) != 6 || pick(-1, 11) != 11 {
		t.Error("pick defaults wrong")
	}
}

func TestMustPassesValues(t *testing.T) {
	if got := must(42, nil); got != 42 {
		t.Errorf("must = %v", got)
	}
}
