// Command altsim regenerates the tables and figures of Sibal & DeSimone,
// "Controlling Alternate Routing in General-Mesh Packet Flow Networks"
// (SIGCOMM 1994), plus the extension studies of this reproduction.
//
// Usage:
//
//	altsim <experiment> [flags]
//
// Experiments:
//
//	fig2          Figure 2: protection level r vs primary load Λ
//	quad          Figures 3/4: quadrangle blocking vs offered load
//	table1        Table 1: NSFNet loads and protection levels
//	nsfnet        Figures 6/7: NSFNet blocking vs load (H=11)
//	h6            §4.2.2: H=6 sweep and alternate-path census
//	failures      §4: link-failure scenarios (2↔3, 7↔9)
//	skew          §4: per-O-D-pair blocking fairness (H=6)
//	minloss       §4: min-loss vs min-hop primary selection
//	ottkrishnan   §4.2.2: NSFNet sweep including the Ott–Krishnan comparator
//	mitragibbens  §3.2: Equation-15 r vs simulated-optimal r (C=120, H=2)
//	cellular      §3.2: channel borrowing with state protection
//	robust        extension: online Λ estimation vs a-priori Λ
//	signaling     extension: two-phase call set-up latency study
//	multirate     extension: voice+video classes (Kaufman–Roberts protection)
//	fixedpoint    extension: Erlang fixed-point vs simulated single-path
//	overflow      ablation: shortest-first vs least-busy alternate selection
//	ramp          extension: nonstationary (ramp/diurnal) robustness
//	dalfar        extension: distributed route computation (ref. [14])
//	hvariants     extension: global-H vs per-link H^k vs tiered protection
//	focused       extension: focused overload on one O-D pair
//	peakedness    extension: assumption-A1 study (overflow arrival dispersion)
//	generalize    extension: guarantee check across random meshes
//	retrials      extension: customer retrials (assumption-A2 stress)
//	insensitivity extension: holding-time distribution sensitivity
//	capacity      extension: headroom search at a 1% grade of service
//	availability  extension: blocking and lost-to-failure vs random outage rate
//	custom        run the three-policy comparison on a -scenario JSON file
//	metro         three-policy comparison on the synthetic metro topology
//	              (-pops, -popsize; -loads intra[,inter] Erlangs)
//	export-scenario  dump the NSFNet scenario as JSON (template for custom)
//	dot           Graphviz DOT of the NSFNet model (or a -scenario file)
//	verify        fast self-check of the headline reproduction claims
//	report        markdown reproduction report to stdout
//	bound         Erlang bound values for both paper networks
//	all           run everything above with the paper's settings
//
// Common flags: -seeds, -warmup, -horizon, -loads, -H, -parallel, -shards.
// The -parallel flag caps the worker goroutines of every parallel stage
// (seed runs, sweep points, fixed-point links); 0 uses GOMAXPROCS, 1 forces
// sequential execution, and every setting prints identical output. The
// -shards flag instead parallelizes within each simulation run, splitting
// its event loop across conservative shards (internal/sim sharded engine);
// 0 uses GOMAXPROCS, 1 (the default) keeps the sequential engine, and every
// setting produces bit-identical results and event streams.
//
// Failure flags: -rates (availability outage-rate grid), -mtbf/-mttr inject
// seeded random outages into custom runs (availability always injects; its
// MTBF grid is 1/rate), -failures plan.json replays a scripted plan
// (custom), -failover drop|reroute picks the in-flight handling mode. See
// internal/sim.FailurePlan and DESIGN.md §11.
//
// Observability flags (any experiment): -events stream.jsonl writes the full
// simulation event stream as JSONL; -metrics out.json writes a counters-and-
// histograms snapshot on exit; -pprof addr serves net/http/pprof, expvar and
// a Prometheus-format /metrics endpoint; -progress 2s prints a progress line
// to stderr (cumulative counters, events/sec, latest windowed blocking);
// -window T sets the width of the streamed time-series windows (default 5,
// 0 disables). See internal/obs and internal/obs/timeseries.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/bound"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/netio"
	"repro/internal/netmodel"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/traffic"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	seeds := fs.Int("seeds", 10, "simulation seeds per point")
	warmup := fs.Float64("warmup", 10, "warm-up period (holding times)")
	horizon := fs.Float64("horizon", 110, "run horizon (holding times)")
	loadsFlag := fs.String("loads", "", "comma-separated sweep loads (default: experiment grid)")
	hFlag := fs.Int("H", 0, "maximum alternate hop length (0 = experiment default)")
	csvPath := fs.String("csv", "", "also write sweep data as CSV to this file (quad/nsfnet/h6/ottkrishnan)")
	scenario := fs.String("scenario", "", "scenario JSON file (custom)")
	parallel := fs.Int("parallel", 0, "worker goroutines per parallel stage (0 = GOMAXPROCS, 1 = sequential; results identical)")
	shards := fs.Int("shards", 1, "conservative event-loop shards per simulation run (0 = GOMAXPROCS, 1 = sequential; results identical)")
	pops := fs.Int("pops", 25, "points of presence in the metro topology (metro)")
	popSize := fs.Int("popsize", 4, "nodes per point of presence (metro)")
	ratesFlag := fs.String("rates", "", "comma-separated per-link outage rates (availability; default grid)")
	mtbf := fs.Float64("mtbf", 0, "mean time between link failures, holding times (custom; 0 = no random outages)")
	mttr := fs.Float64("mttr", 0.5, "mean link repair time, holding times (availability/custom)")
	failuresPath := fs.String("failures", "", "scripted failure-plan JSON file (custom)")
	failoverFlag := fs.String("failover", "drop", `in-flight calls on a failed link: "drop" or "reroute"`)
	of := registerObsFlags(fs)
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}
	p := experiments.SimParams{Seeds: *seeds, Warmup: *warmup, Horizon: *horizon, Parallelism: *parallel}
	if *shards == 0 {
		*shards = runtime.GOMAXPROCS(0)
	}
	p.Shards = *shards
	obsFinish = of.setup(&p)
	defer obsFinish()
	loads, err := parseLoads(*loadsFlag)
	if err != nil {
		fatal(err)
	}
	rates, err := parseLoads(*ratesFlag)
	if err != nil {
		fatal(err)
	}
	failover, err := parseFailover(*failoverFlag)
	if err != nil {
		fatal(err)
	}

	emit := func(sweep *experiments.Sweep) {
		fmt.Print(sweep)
		if *csvPath != "" {
			f, err := os.Create(*csvPath)
			if err != nil {
				fatal(err)
			}
			if err := sweep.WriteCSV(f); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "altsim: wrote %s\n", *csvPath)
		}
	}

	switch cmd {
	case "fig2":
		fmt.Print(experiments.Fig2(0, nil))
	case "quad":
		emit(must(experiments.Quadrangle(loads, *hFlag, p)))
	case "table1":
		fmt.Print(must(experiments.Table1()))
	case "nsfnet":
		emit(must(experiments.NSFNetSweep(loads, pick(*hFlag, 11), false, p)))
	case "h6":
		for _, h := range []int{11, 6} {
			fmt.Println(must(experiments.CensusNSFNet(h)))
		}
		emit(must(experiments.NSFNetSweep(loads, 6, false, p)))
	case "failures":
		for _, fr := range must(experiments.LinkFailures(loads, pick(*hFlag, 11), p)) {
			fmt.Print(fr.Sweep)
			fmt.Println()
		}
	case "skew":
		fmt.Print(must(experiments.Skewness(10, pick(*hFlag, 6), p)))
	case "minloss":
		fmt.Print(experiments.RenderMinLoss(must(experiments.MinLossStudy(loads, pick(*hFlag, 11), p))))
	case "ottkrishnan":
		emit(must(experiments.NSFNetSweep(loads, pick(*hFlag, 11), true, p)))
	case "mitragibbens":
		rows := must(experiments.MitraGibbens(experiments.MitraGibbensOptions{Loads: loads, Sim: p}))
		fmt.Print(experiments.RenderMitraGibbens(rows))
	case "cellular":
		fmt.Print(experiments.RenderCellular(must(experiments.Cellular(loads, *seeds))))
	case "robust":
		fmt.Print(experiments.RenderRobustness(must(experiments.Robustness(loads, pick(*hFlag, 11), p))))
	case "signaling":
		fmt.Print(experiments.RenderSignaling(must(experiments.Signaling(nil, pick(*hFlag, 11), p))))
	case "multirate":
		fmt.Print(experiments.RenderMultiRate(must(experiments.MultiRate(loads, *seeds))))
	case "fixedpoint":
		fmt.Print(experiments.RenderFixedPoint(must(experiments.FixedPointStudy(loads, p))))
	case "overflow":
		fmt.Print(experiments.RenderOverflowRule(must(experiments.OverflowRuleStudy(loads, pick(*hFlag, 11), p))))
	case "ramp":
		fmt.Print(experiments.RenderRamp(must(experiments.RampRobustness(p))))
	case "dalfar":
		fmt.Print(must(experiments.Dalfar()))
	case "hvariants":
		fmt.Print(experiments.RenderHVariants(must(experiments.HVariants(loads, p))))
	case "capacity":
		g := netmodel.NSFNet()
		nominal, _, err := traffic.NSFNetNominal()
		if err != nil {
			fatal(err)
		}
		res := must(experiments.CapacityHeadroom(g, nominal, pick(*hFlag, 11), 0.01, p))
		fmt.Print(experiments.RenderCapacity(0.01, res))
	case "insensitivity":
		fmt.Print(experiments.RenderInsensitivity(must(experiments.Insensitivity(pick(*hFlag, 11), p))))
	case "retrials":
		fmt.Print(experiments.RenderRetrials(must(experiments.Retrials(nil, pick(*hFlag, 11), p))))
	case "generalize":
		fmt.Print(experiments.RenderGeneralMesh(must(experiments.GeneralMesh(10, p))))
	case "peakedness":
		fmt.Print(must(experiments.Peakedness(10, pick(*hFlag, 11), p)))
	case "focused":
		fmt.Print(experiments.RenderFocused(must(experiments.FocusedOverload(loads, pick(*hFlag, 11), p))))
	case "availability":
		load := 0.0
		if len(loads) > 0 {
			load = loads[0]
		}
		av := must(experiments.NSFNetAvailability(load, rates, pick(*hFlag, 11), *mttr, failover, p))
		fmt.Print(av)
	case "custom":
		runCustom(*scenario, *hFlag, failureOpts{
			planPath: *failuresPath, mtbf: *mtbf, mttr: *mttr, mode: failover,
		}, p)
	case "metro":
		runMetro(*pops, *popSize, *hFlag, loads, failureOpts{
			planPath: *failuresPath, mtbf: *mtbf, mttr: *mttr, mode: failover,
		}, p)
	case "export-scenario":
		exportScenario()
	case "dot":
		g := netmodel.NSFNet()
		if *scenario != "" {
			f, err := os.Open(*scenario)
			if err != nil {
				fatal(err)
			}
			scen, err := netio.Read(f)
			f.Close()
			if err != nil {
				fatal(err)
			}
			if g, _, err = scen.Build(); err != nil {
				fatal(err)
			}
		}
		if err := g.WriteDOT(os.Stdout, "", true); err != nil {
			fatal(err)
		}
	case "verify":
		runVerify(p)
	case "report":
		if err := experiments.WriteReport(os.Stdout, experiments.ReportOptions{
			Sim: p, IncludeExtensions: true, Timestamp: time.Now(),
		}); err != nil {
			fatal(err)
		}
	case "bound":
		printBounds()
	case "all":
		runAll(p)
	default:
		usage()
		os.Exit(2)
	}
}

func runAll(p experiments.SimParams) {
	fmt.Print(experiments.Fig2(0, nil))
	fmt.Println()
	fmt.Print(must(experiments.Quadrangle(nil, 0, p)))
	fmt.Println()
	fmt.Print(must(experiments.Table1()))
	fmt.Println()
	for _, h := range []int{11, 6} {
		fmt.Println(must(experiments.CensusNSFNet(h)))
	}
	fmt.Print(must(experiments.NSFNetSweep(nil, 11, true, p)))
	fmt.Println()
	fmt.Print(must(experiments.NSFNetSweep(nil, 6, false, p)))
	fmt.Println()
	for _, fr := range must(experiments.LinkFailures(nil, 11, p)) {
		fmt.Print(fr.Sweep)
		fmt.Println()
	}
	fmt.Print(must(experiments.Skewness(10, 6, p)))
	fmt.Println()
	fmt.Print(experiments.RenderMinLoss(must(experiments.MinLossStudy(nil, 11, p))))
	fmt.Println()
	fmt.Print(experiments.RenderMitraGibbens(must(experiments.MitraGibbens(experiments.MitraGibbensOptions{Sim: p}))))
	fmt.Println()
	fmt.Print(experiments.RenderCellular(must(experiments.Cellular(nil, p.Seeds))))
	fmt.Println()
	fmt.Print(experiments.RenderRobustness(must(experiments.Robustness(nil, 11, p))))
	fmt.Println()
	fmt.Print(experiments.RenderSignaling(must(experiments.Signaling(nil, 11, p))))
	fmt.Println()
	fmt.Print(experiments.RenderMultiRate(must(experiments.MultiRate(nil, p.Seeds))))
	fmt.Println()
	fmt.Print(experiments.RenderFixedPoint(must(experiments.FixedPointStudy(nil, p))))
	fmt.Println()
	fmt.Print(experiments.RenderOverflowRule(must(experiments.OverflowRuleStudy(nil, 11, p))))
	fmt.Println()
	fmt.Print(experiments.RenderRamp(must(experiments.RampRobustness(p))))
	fmt.Println()
	fmt.Print(must(experiments.Dalfar()))
	fmt.Println()
	fmt.Print(experiments.RenderHVariants(must(experiments.HVariants(nil, p))))
	fmt.Println()
	fmt.Print(experiments.RenderFocused(must(experiments.FocusedOverload(nil, 11, p))))
	fmt.Println()
	fmt.Print(must(experiments.Peakedness(10, 11, p)))
	fmt.Println()
	fmt.Print(experiments.RenderGeneralMesh(must(experiments.GeneralMesh(10, p))))
	fmt.Println()
	fmt.Print(experiments.RenderRetrials(must(experiments.Retrials(nil, 11, p))))
	fmt.Println()
	fmt.Print(experiments.RenderInsensitivity(must(experiments.Insensitivity(11, p))))
	fmt.Println()
	printBounds()
}

func printBounds() {
	fmt.Println("Erlang bounds")
	qg := netmodel.Quadrangle()
	for _, rho := range []float64{80, 90, 100, 110} {
		res, err := bound.ErlangBound(qg, traffic.Uniform(4, rho))
		if err != nil {
			fatal(err)
		}
		fmt.Printf("  quadrangle %4.0f E/pair: %.5f\n", rho, res.Blocking)
	}
	nominal, _, err := traffic.NSFNetNominal()
	if err != nil {
		fatal(err)
	}
	ng := netmodel.NSFNet()
	for _, load := range []float64{8, 10, 12, 14, 16} {
		res, err := bound.ErlangBound(ng, nominal.Scaled(load/10))
		if err != nil {
			fatal(err)
		}
		fmt.Printf("  nsfnet load %4.0f: %.5f (cut mask %b)\n", load, res.Blocking, res.Cut.Mask)
	}
}

func parseLoads(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad load %q: %w", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// parseFailover maps the -failover flag to a sim.FailoverMode.
func parseFailover(s string) (sim.FailoverMode, error) {
	switch s {
	case "", "drop":
		return sim.FailoverDrop, nil
	case "reroute":
		return sim.FailoverReroute, nil
	}
	return 0, fmt.Errorf("unknown -failover %q (want drop or reroute)", s)
}

func pick(v, def int) int {
	if v > 0 {
		return v
	}
	return def
}

func must[T any](v T, err error) T {
	if err != nil {
		fatal(err)
	}
	return v
}

// obsFinish flushes observability outputs (event stream, metrics snapshot);
// set once flags are parsed so fatal exits still persist what was captured.
var obsFinish = func() {}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "altsim:", err)
	obsFinish()
	os.Exit(1)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: altsim <experiment> [flags]
experiments: fig2 quad table1 nsfnet h6 failures skew minloss ottkrishnan
             mitragibbens cellular robust signaling multirate fixedpoint
             overflow ramp dalfar hvariants focused peakedness generalize
             retrials insensitivity capacity availability custom metro
             export-scenario dot verify report bound all
flags: -seeds N -warmup T -horizon T -loads a,b,c -H n -csv file -parallel N
       -shards N -pops N -popsize N
       -rates a,b,c -mtbf T -mttr T -failures plan.json -failover drop|reroute
       -events stream.jsonl -metrics out.json -pprof addr -progress 2s
       -window T`)
}

// failureOpts carries the CLI's dynamic-failure settings into custom runs:
// a scripted plan file, or seeded random outages when mtbf > 0.
type failureOpts struct {
	planPath   string
	mtbf, mttr float64
	mode       sim.FailoverMode
}

// active reports whether any failure injection was requested.
func (fo failureOpts) active() bool { return fo.planPath != "" || fo.mtbf > 0 }

// plan returns the failure plan for one seed: the scripted file verbatim
// (identical for every seed), or generated duplex outages on the seed's own
// substream.
func (fo failureOpts) plan(g *graph.Graph, scripted *sim.FailurePlan, horizon float64, seed int64) (*sim.FailurePlan, error) {
	if scripted != nil {
		return scripted, nil
	}
	if fo.mtbf <= 0 {
		return nil, nil
	}
	return sim.GenerateOutages(g, horizon, sim.OutageParams{
		MTBF: fo.mtbf, MTTR: fo.mttr, Duplex: true, Seed: seed,
	})
}

// runCustom executes the single-path / uncontrolled / controlled comparison
// on a user-supplied scenario file, optionally under failure injection.
func runCustom(path string, h int, fo failureOpts, p experiments.SimParams) {
	if path == "" {
		fatal(fmt.Errorf("custom requires -scenario file.json (see export-scenario for a template)"))
	}
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	scen, err := netio.Read(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	g, m, err := scen.Build()
	if err != nil {
		fatal(err)
	}
	if h == 0 {
		h = scen.H
	}
	runComparison(scen.Name, g, m, h, fo, p)
}

// runMetro executes the same three-policy comparison on the synthetic
// metro topology (netmodel.Metro) under its locality-weighted workload:
// the named large-network scenario, and — with -shards — the natural
// input for the sharded engine (pop cliques rarely straddle the
// partition's cuts, so almost all traffic is shard-local).
func runMetro(pops, popSize, h int, loads []float64, fo failureOpts, p experiments.SimParams) {
	intra, inter := 6.0, 0.01
	if len(loads) > 0 {
		intra = loads[0]
	}
	if len(loads) > 1 {
		inter = loads[1]
	}
	g := netmodel.Metro(pops, popSize, 30, 60)
	m := traffic.MetroLocality(pops, popSize, intra, inter)
	if h == 0 {
		h = 2
	}
	name := fmt.Sprintf("metro %d pops × %d nodes (intra %g E, inter %g E)", pops, popSize, intra, inter)
	runComparison(name, g, m, h, fo, p)
}

// runComparison is the shared body of the custom and metro experiments:
// derive a scheme at H=h and compare the three core policies under common
// random numbers, optionally with failure injection.
func runComparison(name string, g *graph.Graph, m *traffic.Matrix, h int, fo failureOpts, p experiments.SimParams) {
	scheme, err := core.New(g, m, core.Options{H: h})
	if err != nil {
		fatal(err)
	}
	if p.Seeds <= 0 {
		p.Seeds = 10
	}
	if p.Warmup <= 0 {
		p.Warmup = 10
	}
	if p.Horizon <= 0 {
		p.Horizon = p.Warmup + 100
	}
	var scripted *sim.FailurePlan
	if fo.planPath != "" {
		pf, err := os.Open(fo.planPath)
		if err != nil {
			fatal(err)
		}
		scripted, err = sim.ReadFailurePlanJSON(pf, g)
		pf.Close()
		if err != nil {
			fatal(err)
		}
	}
	fmt.Printf("scenario %q: %d nodes, %d links, %.1f Erlangs offered, H=%d\n",
		name, g.NumNodes(), g.NumLinks(), m.Total(), scheme.H)
	if fo.active() {
		src := fmt.Sprintf("plan %s", fo.planPath)
		if scripted == nil {
			src = fmt.Sprintf("random outages MTBF=%g MTTR=%g", fo.mtbf, fo.mttr)
		}
		fmt.Printf("failures: %s, failover=%s\n", src, fo.mode)
		fmt.Printf("%-24s %12s %12s %12s %14s\n", "policy", "blocking", "±95%", "lost", "calls/unit")
	} else {
		fmt.Printf("%-24s %12s %12s %14s\n", "policy", "blocking", "±95%", "calls/unit")
	}
	for _, pol := range []sim.Policy{scheme.SinglePath(), scheme.Uncontrolled(), scheme.Controlled()} {
		var xs, tps, lost []float64
		for seed := 0; seed < p.Seeds; seed++ {
			// Streaming arrivals: the generator's per-pair substreams make a
			// fresh stream per policy replay the identical call sequence
			// (common random numbers) in O(pairs) memory.
			src, err := sim.NewStream(m, p.Horizon, int64(seed))
			if err != nil {
				fatal(err)
			}
			plan, err := fo.plan(g, scripted, p.Horizon, int64(seed))
			if err != nil {
				fatal(err)
			}
			res, err := sim.Run(sim.Config{
				Graph: g, Policy: pol, Source: src, Warmup: p.Warmup,
				Failures: plan, Failover: fo.mode,
				Sink: p.Sink, OccupancyEvents: p.OccupancyEvents,
				WindowLength: p.WindowLength, Shards: p.Shards,
			})
			if err != nil {
				fatal(err)
			}
			xs = append(xs, res.Blocking())
			tps = append(tps, res.Throughput())
			lost = append(lost, float64(res.LostToFailure)/float64(res.Offered))
			if p.Metrics != nil {
				p.Metrics.AddSpan(res.Span)
			}
		}
		sum := stats.Summarize(xs)
		tsum := stats.Summarize(tps)
		if fo.active() {
			lsum := stats.Summarize(lost)
			fmt.Printf("%-24s %12.5f %12.5f %12.5f %14.1f\n",
				pol.Name(), sum.Mean, sum.HalfWidth95, lsum.Mean, tsum.Mean)
		} else {
			fmt.Printf("%-24s %12.5f %12.5f %14.1f\n", pol.Name(), sum.Mean, sum.HalfWidth95, tsum.Mean)
		}
	}
	if eb, err := bound.ErlangBound(g, m); err == nil {
		fmt.Printf("%-24s %12.5f\n", "erlang-bound", eb.Blocking)
	}
}

// exportScenario writes the NSFNet scenario (reconstructed nominal traffic)
// to stdout as a template for custom runs.
func exportScenario() {
	g := netmodel.NSFNet()
	nominal, _, err := traffic.NSFNetNominal()
	if err != nil {
		fatal(err)
	}
	scen, err := netio.FromNetwork("nsfnet-t3-nominal", g, nominal, 11)
	if err != nil {
		fatal(err)
	}
	if err := scen.Write(os.Stdout); err != nil {
		fatal(err)
	}
}

// runVerify executes a fast end-to-end self-check of the reproduction's
// headline claims and exits nonzero on any failure — the CI entry point.
func runVerify(p experiments.SimParams) {
	failures := 0
	check := func(name string, ok bool, detail string) {
		status := "PASS"
		if !ok {
			status = "FAIL"
			failures++
		}
		fmt.Printf("%-52s %s  %s\n", name, status, detail)
	}

	tbl, err := experiments.Table1()
	if err != nil {
		fatal(err)
	}
	check("Table 1: fitted loads match published Λ",
		tbl.MaxLoadError < 1e-4, fmt.Sprintf("max |ΔΛ| = %.2g", tbl.MaxLoadError))
	check("Table 1: protection levels (H=11)",
		tbl.ExactR11 == 30, fmt.Sprintf("%d/30 exact", tbl.ExactR11))
	check("Table 1: protection levels (H=6)",
		tbl.ExactR6 >= 26, fmt.Sprintf("%d/30 exact (rest on rounding steps)", tbl.ExactR6))

	census, err := experiments.CensusNSFNet(11)
	if err != nil {
		fatal(err)
	}
	check("§4.2.2 path census (H=11: ≈9 mean, 5 min, 15 max)",
		census.MinAlternates == 5 && census.MaxAlternates == 15 &&
			census.MeanAlternates > 8 && census.MeanAlternates < 10,
		census.String())

	if p.Seeds > 4 {
		p.Seeds = 4
	}
	if p.Horizon > 60 {
		p.Horizon = 60
	}
	sweep, err := experiments.Quadrangle([]float64{85, 100}, 0, p)
	if err != nil {
		fatal(err)
	}
	at := func(name string, x float64) float64 {
		for _, pt := range sweep.SeriesByName(name).Points {
			if pt.X == x {
				return pt.Y
			}
		}
		return -1
	}
	check("quadrangle: controlled beats both at 85 E",
		at("controlled-alternate", 85) < at("single-path", 85) &&
			at("controlled-alternate", 85) < at("uncontrolled-alternate", 85),
		fmt.Sprintf("ctrl %.4f vs single %.4f, unc %.4f",
			at("controlled-alternate", 85), at("single-path", 85), at("uncontrolled-alternate", 85)))
	check("quadrangle: uncontrolled collapses at 100 E",
		at("uncontrolled-alternate", 100) > at("single-path", 100),
		fmt.Sprintf("unc %.4f vs single %.4f", at("uncontrolled-alternate", 100), at("single-path", 100)))
	check("quadrangle: guarantee (controlled <= single + ε)",
		at("controlled-alternate", 100) <= at("single-path", 100)+0.005,
		fmt.Sprintf("ctrl %.4f vs single %.4f", at("controlled-alternate", 100), at("single-path", 100)))

	if failures > 0 {
		fmt.Printf("%d check(s) FAILED\n", failures)
		os.Exit(1)
	}
	fmt.Println("all reproduction self-checks passed")
}
