package main

import (
	"expvar"
	"flag"
	"fmt"
	"math"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/obs/timeseries"
)

// obsOptions carries the observability flag values shared by every
// experiment subcommand.
type obsOptions struct {
	events     string        // JSONL event-stream destination
	metrics    string        // metrics-snapshot destination (JSON)
	pprof      string        // pprof/expvar/metrics listen address
	progress   time.Duration // stderr progress interval (0 = off)
	window     float64       // time-series window width (0 = off)
	cpuprofile string        // CPU profile destination (pprof format)
	memprofile string        // heap profile destination (pprof format)
}

func registerObsFlags(fs *flag.FlagSet) *obsOptions {
	var o obsOptions
	fs.StringVar(&o.events, "events", "", "write the simulation event stream as JSONL to this file")
	fs.StringVar(&o.metrics, "metrics", "", "write a metrics snapshot as JSON to this file on exit")
	fs.StringVar(&o.pprof, "pprof", "", "serve net/http/pprof, expvar and /metrics on this address (e.g. localhost:6060)")
	fs.DurationVar(&o.progress, "progress", 0, "print a progress line to stderr at this interval (e.g. 2s)")
	fs.Float64Var(&o.window, "window", 5, "windowed time-series width in simulated time units (0 disables the series)")
	fs.StringVar(&o.cpuprofile, "cpuprofile", "", "write a CPU profile to this file (go tool pprof format)")
	fs.StringVar(&o.memprofile, "memprofile", "", "write a heap profile to this file on exit (go tool pprof format)")
	return &o
}

// enabled reports whether any observability flag was set.
func (o *obsOptions) enabled() bool {
	return o.events != "" || o.metrics != "" || o.pprof != "" || o.progress > 0
}

// startProfiles starts the CPU profile if requested and returns an
// idempotent finish function that stops it and writes the heap profile.
// Profile I/O errors are fatal at start (a silently empty profile wastes
// the whole run) but only reported at finish.
func (o *obsOptions) startProfiles() func() {
	var cpuFile *os.File
	if o.cpuprofile != "" {
		f, err := os.Create(o.cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fatal(err)
		}
		cpuFile = f
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				if err := cpuFile.Close(); err != nil {
					fmt.Fprintln(os.Stderr, "altsim: closing cpu profile:", err)
				}
			}
			if o.memprofile != "" {
				f, err := os.Create(o.memprofile)
				if err != nil {
					fmt.Fprintln(os.Stderr, "altsim: writing heap profile:", err)
					return
				}
				runtime.GC() // settle live-heap accounting before the snapshot
				if err := pprof.WriteHeapProfile(f); err != nil {
					f.Close()
					fmt.Fprintln(os.Stderr, "altsim: writing heap profile:", err)
					return
				}
				if err := f.Close(); err != nil {
					fmt.Fprintln(os.Stderr, "altsim: writing heap profile:", err)
				}
			}
		})
	}
}

// livePub owns the process-wide expvar and /metrics registrations, which
// panic on duplicate names. The handlers are registered exactly once and
// read the current registry/series through the mutex, so obs setup can run
// any number of times in one process (tests, multi-run invocations) — each
// setup just repoints the live sources.
var livePub struct {
	once   sync.Once
	mu     sync.Mutex
	reg    *obs.Registry
	series *timeseries.Folder
}

// publishLive repoints the expvar and /metrics endpoints at the given
// registry and series (series may be nil), registering the handlers on
// first use.
func publishLive(reg *obs.Registry, series *timeseries.Folder) {
	livePub.mu.Lock()
	livePub.reg, livePub.series = reg, series
	livePub.mu.Unlock()
	livePub.once.Do(func() {
		expvar.Publish("altsim", expvar.Func(func() any {
			livePub.mu.Lock()
			reg := livePub.reg
			livePub.mu.Unlock()
			if reg == nil {
				return nil
			}
			return reg.Snapshot()
		}))
		http.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			livePub.mu.Lock()
			reg, series := livePub.reg, livePub.series
			livePub.mu.Unlock()
			var extra []obs.PromCollector
			if series != nil {
				extra = append(extra, series)
			}
			obs.PromHandler(reg, extra...).ServeHTTP(w, r)
		})
	})
}

// setup wires the observability flags into p and returns a finish function
// that flushes the event stream, stops the progress ticker, and writes the
// metrics snapshot. finish is idempotent and runs on both normal and fatal
// exits (fatal calls it via obsFinish).
func (o *obsOptions) setup(p *experiments.SimParams) func() {
	// Profiling is deliberately independent of the metrics/sink wiring: a
	// profile of the hot path should see the uninstrumented engine unless
	// the user also asked for events or metrics.
	profileFinish := o.startProfiles()
	if !o.enabled() {
		return profileFinish
	}

	reg := obs.NewRegistry()
	p.Metrics = reg
	sinks := []obs.Sink{reg}

	var (
		jsonl      *obs.JSONL
		eventsFile *os.File
	)
	if o.events != "" {
		f, err := os.Create(o.events)
		if err != nil {
			fatal(err)
		}
		eventsFile = f
		jsonl = obs.NewJSONL(f)
		sinks = append(sinks, jsonl)
		// Occupancy samples only when someone asked for the stream; they
		// dominate its volume.
		p.OccupancyEvents = true
	}

	// The windowed time-series folder feeds -progress and /metrics and, when
	// an event stream is being written, folds confirmed regime shifts back
	// into it as typed regime-shift records. The simulator's own window
	// stats use the same width.
	var series *timeseries.Folder
	if o.window > 0 {
		p.WindowLength = o.window
		var shiftSink obs.Sink
		if jsonl != nil {
			shiftSink = jsonl
		}
		f, err := timeseries.New(timeseries.Options{
			Width:    o.window,
			Capacity: 256,
			Detector: &timeseries.DetectorConfig{},
			Sink:     shiftSink,
		})
		if err != nil {
			fatal(err)
		}
		series = f
		sinks = append(sinks, series)
	}
	p.Sink = obs.Multi(sinks...)

	if o.pprof != "" {
		// expvar and net/http/pprof self-register on DefaultServeMux;
		// publishLive adds the live snapshot to /debug/vars and the
		// Prometheus exposition to /metrics, idempotently.
		publishLive(reg, series)
		go func() {
			if err := http.ListenAndServe(o.pprof, nil); err != nil {
				fmt.Fprintln(os.Stderr, "altsim: pprof server:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "altsim: pprof/expvar on http://%s/debug/pprof, metrics on /metrics\n", o.pprof)
	}

	stopProgress := make(chan struct{})
	var progressDone sync.WaitGroup
	if o.progress > 0 {
		progressDone.Add(1)
		go func() {
			defer progressDone.Done()
			tick := time.NewTicker(o.progress)
			defer tick.Stop()
			lastEvents := int64(0)
			lastAt := time.Now()
			for {
				select {
				case <-stopProgress:
					return
				case <-tick.C:
					s := reg.Snapshot()
					now := time.Now()
					rate := float64(s.Events-lastEvents) / now.Sub(lastAt).Seconds()
					lastEvents, lastAt = s.Events, now
					line := fmt.Sprintf("altsim: %d runs, %d events (%.0f/s), %d offered, %d blocked",
						s.Runs, s.Events, rate, s.Offered, s.Blocked)
					if s.Blocking != nil {
						line += fmt.Sprintf(" (B=%.5f)", *s.Blocking)
					}
					if series != nil {
						if run, w, ok := series.Latest(); ok {
							if b := w.Blocking(); !math.IsNaN(b) {
								line += fmt.Sprintf(", window %d/run %d B=%.5f", w.Index, run, b)
							}
						}
					}
					fmt.Fprintln(os.Stderr, line)
				}
			}
		}()
	}

	var once sync.Once
	return func() {
		once.Do(func() {
			profileFinish()
			close(stopProgress)
			progressDone.Wait()
			if jsonl != nil {
				if err := jsonl.Flush(); err != nil {
					fmt.Fprintln(os.Stderr, "altsim: flushing event stream:", err)
				}
				if err := eventsFile.Close(); err != nil {
					fmt.Fprintln(os.Stderr, "altsim: closing event stream:", err)
				}
			}
			if o.metrics != "" {
				f, err := os.Create(o.metrics)
				if err != nil {
					fmt.Fprintln(os.Stderr, "altsim: writing metrics:", err)
					return
				}
				if err := reg.WriteJSON(f); err != nil {
					f.Close()
					fmt.Fprintln(os.Stderr, "altsim: writing metrics:", err)
					return
				}
				if err := f.Close(); err != nil {
					fmt.Fprintln(os.Stderr, "altsim: writing metrics:", err)
				}
			}
		})
	}
}
