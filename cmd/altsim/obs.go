package main

import (
	"expvar"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
)

// obsOptions carries the observability flag values shared by every
// experiment subcommand.
type obsOptions struct {
	events   string        // JSONL event-stream destination
	metrics  string        // metrics-snapshot destination (JSON)
	pprof    string        // pprof/expvar listen address
	progress time.Duration // stderr progress interval (0 = off)
}

func registerObsFlags(fs *flag.FlagSet) *obsOptions {
	var o obsOptions
	fs.StringVar(&o.events, "events", "", "write the simulation event stream as JSONL to this file")
	fs.StringVar(&o.metrics, "metrics", "", "write a metrics snapshot as JSON to this file on exit")
	fs.StringVar(&o.pprof, "pprof", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6060)")
	fs.DurationVar(&o.progress, "progress", 0, "print a progress line to stderr at this interval (e.g. 2s)")
	return &o
}

// enabled reports whether any observability flag was set.
func (o *obsOptions) enabled() bool {
	return o.events != "" || o.metrics != "" || o.pprof != "" || o.progress > 0
}

// setup wires the observability flags into p and returns a finish function
// that flushes the event stream, stops the progress ticker, and writes the
// metrics snapshot. finish is idempotent and runs on both normal and fatal
// exits (fatal calls it via obsFinish).
func (o *obsOptions) setup(p *experiments.SimParams) func() {
	if !o.enabled() {
		return func() {}
	}

	reg := obs.NewRegistry()
	p.Metrics = reg
	sinks := []obs.Sink{reg}

	var (
		jsonl      *obs.JSONL
		eventsFile *os.File
	)
	if o.events != "" {
		f, err := os.Create(o.events)
		if err != nil {
			fatal(err)
		}
		eventsFile = f
		jsonl = obs.NewJSONL(f)
		sinks = append(sinks, jsonl)
		// Occupancy samples only when someone asked for the stream; they
		// dominate its volume.
		p.OccupancyEvents = true
	}
	p.Sink = obs.Multi(sinks...)

	if o.pprof != "" {
		// expvar and net/http/pprof self-register on DefaultServeMux;
		// publishing the registry snapshot makes /debug/vars carry the live
		// simulation counters.
		expvar.Publish("altsim", expvar.Func(func() any { return reg.Snapshot() }))
		go func() {
			if err := http.ListenAndServe(o.pprof, nil); err != nil {
				fmt.Fprintln(os.Stderr, "altsim: pprof server:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "altsim: pprof/expvar on http://%s/debug/pprof\n", o.pprof)
	}

	stopProgress := make(chan struct{})
	var progressDone sync.WaitGroup
	if o.progress > 0 {
		progressDone.Add(1)
		go func() {
			defer progressDone.Done()
			tick := time.NewTicker(o.progress)
			defer tick.Stop()
			for {
				select {
				case <-stopProgress:
					return
				case <-tick.C:
					s := reg.Snapshot()
					line := fmt.Sprintf("altsim: %d runs, %d events, %d offered, %d blocked",
						s.Runs, s.Events, s.Offered, s.Blocked)
					if s.Blocking != nil {
						line += fmt.Sprintf(" (B=%.5f)", *s.Blocking)
					}
					fmt.Fprintln(os.Stderr, line)
				}
			}
		}()
	}

	var once sync.Once
	return func() {
		once.Do(func() {
			close(stopProgress)
			progressDone.Wait()
			if jsonl != nil {
				if err := jsonl.Flush(); err != nil {
					fmt.Fprintln(os.Stderr, "altsim: flushing event stream:", err)
				}
				if err := eventsFile.Close(); err != nil {
					fmt.Fprintln(os.Stderr, "altsim: closing event stream:", err)
				}
			}
			if o.metrics != "" {
				f, err := os.Create(o.metrics)
				if err != nil {
					fmt.Fprintln(os.Stderr, "altsim: writing metrics:", err)
					return
				}
				if err := reg.WriteJSON(f); err != nil {
					f.Close()
					fmt.Fprintln(os.Stderr, "altsim: writing metrics:", err)
					return
				}
				if err := f.Close(); err != nil {
					fmt.Fprintln(os.Stderr, "altsim: writing metrics:", err)
				}
			}
		})
	}
}
