package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/experiments"
	"repro/internal/obs"
)

// TestObsSetupEndToEnd drives the -events/-metrics plumbing the way main
// does: wire the flags into SimParams, run a real (small) experiment, finish,
// and check that the persisted JSONL stream re-aggregates to exactly the
// counters in the metrics snapshot.
func TestObsSetupEndToEnd(t *testing.T) {
	dir := t.TempDir()
	o := obsOptions{
		events:  filepath.Join(dir, "events.jsonl"),
		metrics: filepath.Join(dir, "metrics.json"),
	}
	p := experiments.SimParams{Seeds: 2, Warmup: 5, Horizon: 30}
	finish := o.setup(&p)
	if p.Sink == nil || p.Metrics == nil || !p.OccupancyEvents {
		t.Fatal("setup did not wire SimParams")
	}

	sweep, err := experiments.Quadrangle([]float64{90}, 0, p)
	if err != nil {
		t.Fatal(err)
	}
	if sweep.SeriesByName("controlled-alternate") == nil {
		t.Fatal("experiment produced no controlled series")
	}
	finish()
	finish() // idempotent

	f, err := os.Open(o.events)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := obs.ReadJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	runs := obs.Aggregate(events)
	// 2 seeds × 3 policies, in seed order because the sink serializes runs.
	if len(runs) != 6 {
		t.Fatalf("%d runs in stream, want 6", len(runs))
	}
	var offered, blocked int64
	for _, r := range runs {
		if r.Policy == "" {
			t.Errorf("run missing policy name: %+v", r)
		}
		offered += r.Offered
		blocked += r.Blocked
	}

	raw, err := os.ReadFile(o.metrics)
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Runs != 6 {
		t.Errorf("snapshot runs = %d, want 6", snap.Runs)
	}
	if snap.Offered != offered || snap.Blocked != blocked {
		t.Errorf("snapshot offered/blocked %d/%d != stream aggregate %d/%d",
			snap.Offered, snap.Blocked, offered, blocked)
	}
	if snap.Blocking == nil {
		t.Fatal("snapshot blocking missing despite offered calls")
	}
	if want := float64(blocked) / float64(offered); *snap.Blocking != want {
		t.Errorf("snapshot blocking %v != re-aggregated %v", *snap.Blocking, want)
	}
	if len(snap.LinkOccupancy) == 0 {
		t.Error("no link-occupancy distributions despite OccupancyEvents")
	}
}

// TestObsSetupDisabled checks that with no flags set, setup is a no-op and
// simulation stays uninstrumented (the nil-sink fast path).
func TestObsSetupDisabled(t *testing.T) {
	var o obsOptions
	var p experiments.SimParams
	finish := o.setup(&p)
	finish()
	if p.Sink != nil || p.Metrics != nil || p.OccupancyEvents {
		t.Fatal("disabled setup must leave SimParams untouched")
	}
}
