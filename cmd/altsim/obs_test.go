package main

import (
	"encoding/json"
	"expvar"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/obs/timeseries"
)

// TestObsSetupEndToEnd drives the -events/-metrics plumbing the way main
// does: wire the flags into SimParams, run a real (small) experiment, finish,
// and check that the persisted JSONL stream re-aggregates to exactly the
// counters in the metrics snapshot.
func TestObsSetupEndToEnd(t *testing.T) {
	dir := t.TempDir()
	o := obsOptions{
		events:  filepath.Join(dir, "events.jsonl"),
		metrics: filepath.Join(dir, "metrics.json"),
	}
	p := experiments.SimParams{Seeds: 2, Warmup: 5, Horizon: 30}
	finish := o.setup(&p)
	if p.Sink == nil || p.Metrics == nil || !p.OccupancyEvents {
		t.Fatal("setup did not wire SimParams")
	}

	sweep, err := experiments.Quadrangle([]float64{90}, 0, p)
	if err != nil {
		t.Fatal(err)
	}
	if sweep.SeriesByName("controlled-alternate") == nil {
		t.Fatal("experiment produced no controlled series")
	}
	finish()
	finish() // idempotent

	f, err := os.Open(o.events)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := obs.ReadJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	runs := obs.Aggregate(events)
	// 2 seeds × 3 policies, in seed order because the sink serializes runs.
	if len(runs) != 6 {
		t.Fatalf("%d runs in stream, want 6", len(runs))
	}
	var offered, blocked int64
	for _, r := range runs {
		if r.Policy == "" {
			t.Errorf("run missing policy name: %+v", r)
		}
		offered += r.Offered
		blocked += r.Blocked
	}

	raw, err := os.ReadFile(o.metrics)
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Runs != 6 {
		t.Errorf("snapshot runs = %d, want 6", snap.Runs)
	}
	if snap.Offered != offered || snap.Blocked != blocked {
		t.Errorf("snapshot offered/blocked %d/%d != stream aggregate %d/%d",
			snap.Offered, snap.Blocked, offered, blocked)
	}
	if snap.Blocking == nil {
		t.Fatal("snapshot blocking missing despite offered calls")
	}
	if want := float64(blocked) / float64(offered); *snap.Blocking != want {
		t.Errorf("snapshot blocking %v != re-aggregated %v", *snap.Blocking, want)
	}
	if len(snap.LinkOccupancy) == 0 {
		t.Error("no link-occupancy distributions despite OccupancyEvents")
	}
}

// TestObsSetupDisabled checks that with no flags set, setup is a no-op and
// simulation stays uninstrumented (the nil-sink fast path).
func TestObsSetupDisabled(t *testing.T) {
	var o obsOptions
	var p experiments.SimParams
	finish := o.setup(&p)
	finish()
	if p.Sink != nil || p.Metrics != nil || p.OccupancyEvents {
		t.Fatal("disabled setup must leave SimParams untouched")
	}
}

// TestObsSetupWindowed runs setup with the time-series window enabled and
// checks that the simulator's window stats are wired in and the persisted
// stream folds into a dense windowed series.
func TestObsSetupWindowed(t *testing.T) {
	dir := t.TempDir()
	o := obsOptions{
		events: filepath.Join(dir, "events.jsonl"),
		window: 5,
	}
	p := experiments.SimParams{Seeds: 1, Warmup: 5, Horizon: 30}
	finish := o.setup(&p)
	if p.WindowLength != 5 {
		t.Fatalf("WindowLength = %v, want 5", p.WindowLength)
	}
	if _, err := experiments.Quadrangle([]float64{90}, 0, p); err != nil {
		t.Fatal(err)
	}
	finish()

	f, err := os.Open(o.events)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := obs.ReadJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	sawWindowClosed := false
	for _, e := range events {
		if e.Kind == obs.KindWindowClosed {
			sawWindowClosed = true
			break
		}
	}
	if !sawWindowClosed {
		t.Error("no window-closed events in stream despite -window")
	}
	series, err := timeseries.FoldEvents(events, timeseries.Options{Width: o.window})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) == 0 {
		t.Fatal("stream folded into no runs")
	}
	for _, r := range series {
		if len(r.Windows) == 0 {
			t.Fatalf("run %d folded into no windows", r.Run)
		}
	}
}

// TestPublishLiveIdempotent is the duplicate-registration regression test:
// expvar.Publish and http.HandleFunc both panic on a second registration, so
// publishLive must register once and repoint thereafter. It also scrapes the
// mounted /metrics endpoint and validates the exposition.
func TestPublishLiveIdempotent(t *testing.T) {
	regA := obs.NewRegistry()
	obs.Emit(regA, obs.Event{Kind: obs.KindRunStart, Policy: "a", Seed: 1})
	obs.Emit(regA, obs.Event{Kind: obs.KindCallOffered, Time: 1})
	obs.Emit(regA, obs.Event{Kind: obs.KindRunEnd, Time: 2})

	series, err := timeseries.New(timeseries.Options{Width: 1})
	if err != nil {
		t.Fatal(err)
	}
	publishLive(regA, series)
	// A second setup in the same process must not panic and must repoint the
	// endpoints at the new registry.
	regB := obs.NewRegistry()
	for i := 0; i < 3; i++ {
		obs.Emit(regB, obs.Event{Kind: obs.KindCallOffered, Time: float64(i), Measured: true})
	}
	publishLive(regB, nil)

	if expvar.Get("altsim") == nil {
		t.Fatal("expvar altsim not published")
	}

	srv := httptest.NewServer(http.DefaultServeMux)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Content-Type"); !strings.Contains(got, "version=0.0.4") {
		t.Fatalf("/metrics content type %q", got)
	}
	if err := obs.ValidateProm(body); err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, body)
	}
	// The scrape must reflect the most recent publishLive target (regB).
	if !strings.Contains(string(body), "altroute_calls_offered_total 3") {
		t.Fatalf("scrape does not reflect repointed registry:\n%s", body)
	}
}
