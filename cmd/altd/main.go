// Command altd is the live routing control plane: a daemon serving the
// paper's controlled alternate-routing admission decisions over
// JSON-over-HTTP. It loads a netio scenario, derives the scheme (route
// table + protection levels), and answers admit/release/status requests
// through the compiled route tables — the same thresholds and branch-poor
// scan as the offline simulator, so a replayed request trace decides
// bit-identically to sim.Run. Observed set-ups feed the EWMA Λ̂ estimator,
// and estimate epochs re-derive the protection levels through the shared
// Erlang cache; POST /topology notifications recompile the thresholds the
// way the simulation engines do at failure epochs.
//
// Usage:
//
//	altd -scenario net.json [-addr localhost:8080] [flags]
//
// Endpoints:
//
//	POST /admit     {"id":1,"from":"sf","to":"ny"}        admission decision
//	POST /release   {"id":1}                              release a call
//	POST /topology  {"from":"sf","to":"ny","down":true,"duplex":true}
//	GET  /status    decision counters, Λ̂, protection levels
//	GET  /metrics   Prometheus exposition (registry + time series)
//	GET  /debug/vars, /debug/pprof/...
//
// Quick start:
//
//	altd -scenario scenario.json -addr localhost:8080 &
//	curl -s localhost:8080/admit -d '{"id":1,"from":"node0","to":"node1"}'
//	curl -s localhost:8080/status | jq .metrics
//	curl -s localhost:8080/metrics | grep altroute_calls_accepted
//
// Timestamps: requests may carry an "at" field (model time); without one
// the daemon stamps the decision from its wall clock mapped to model time
// at -timescale units per second. The control plane itself never reads a
// clock — the mapping is injected here, keeping replays deterministic.
//
// Shutdown (SIGINT/SIGTERM) is graceful: the listener stops accepting,
// in-flight decisions drain through the single decision loop, and the
// -events JSONL stream is flushed before exit.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/ctrl"
	"repro/internal/estimate"
	"repro/internal/netio"
	"repro/internal/obs"
	"repro/internal/obs/timeseries"
	"repro/internal/sim"
)

// options carries the parsed flag values.
type options struct {
	scenario  string
	addr      string
	hops      int
	estWindow float64
	estAlpha  float64
	refresh   float64
	timescale float64
	tick      time.Duration
	events    string
	window    float64
	batch     int
	queue     int
}

func parseFlags(args []string, stderr io.Writer) (*options, error) {
	fs := flag.NewFlagSet("altd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	o := &options{}
	fs.StringVar(&o.scenario, "scenario", "", "scenario JSON file (required; see altsim export-scenario)")
	fs.StringVar(&o.addr, "addr", "localhost:8080", "control API listen address")
	fs.IntVar(&o.hops, "H", 0, "maximum alternate hop length (0 = scenario's, else unlimited loop-free)")
	fs.Float64Var(&o.estWindow, "est-window", 5, "Λ̂ estimation window in model time units (0 disables estimation)")
	fs.Float64Var(&o.estAlpha, "est-alpha", 0.3, "Λ̂ EWMA smoothing factor in (0,1]")
	fs.Float64Var(&o.refresh, "refresh", 0, "estimate-epoch period in model time units (0 = est-window)")
	fs.Float64Var(&o.timescale, "timescale", 1, "model time units per wall-clock second")
	fs.DurationVar(&o.tick, "tick", time.Second, "estimator tick period in wall time (0 disables ticks)")
	fs.StringVar(&o.events, "events", "", "write the decision event stream as JSONL to this file")
	fs.Float64Var(&o.window, "window", 5, "windowed time-series width in model time units (0 disables)")
	fs.IntVar(&o.batch, "batch", 0, "decision micro-batch size (0 = default)")
	fs.IntVar(&o.queue, "queue", 0, "decision queue depth (0 = default)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if o.scenario == "" {
		fs.Usage()
		return nil, fmt.Errorf("altd: -scenario is required")
	}
	return o, nil
}

// daemon is one assembled control plane: the ctrl server, its HTTP
// front end, the estimator tick loop, and the event sinks.
type daemon struct {
	srv  *ctrl.Server
	http *http.Server
	ln   net.Listener

	reg        *obs.Registry
	series     *timeseries.Folder
	jsonl      *obs.JSONL
	eventsFile *os.File

	tick     time.Duration
	tickStop chan struct{}
	tickWG   sync.WaitGroup

	stderr io.Writer
}

// newDaemon loads the scenario, derives the scheme, and assembles the
// server and its mux; the listener is bound (so addr resolves :0) but not
// yet serving.
func newDaemon(o *options, stderr io.Writer) (*daemon, error) {
	f, err := os.Open(o.scenario)
	if err != nil {
		return nil, err
	}
	sc, err := netio.Read(f)
	f.Close()
	if err != nil {
		return nil, err
	}
	g, m, err := sc.Build()
	if err != nil {
		// ErrInvalidScenario: fail loudly before any traffic is admitted.
		return nil, fmt.Errorf("altd: scenario %s: %w", o.scenario, err)
	}
	hops := o.hops
	if hops == 0 {
		hops = sc.H
	}
	scheme, err := core.New(g, m, core.Options{H: hops})
	if err != nil {
		return nil, err
	}

	d := &daemon{tick: o.tick, tickStop: make(chan struct{}), stderr: stderr}

	// Sinks: the registry always runs (it feeds /metrics); JSONL and the
	// windowed time series are opt-in.
	d.reg = obs.NewRegistry()
	sinks := []obs.Sink{d.reg}
	if o.events != "" {
		ef, err := os.Create(o.events)
		if err != nil {
			return nil, err
		}
		d.eventsFile = ef
		d.jsonl = obs.NewJSONL(ef)
		sinks = append(sinks, d.jsonl)
	}
	if o.window > 0 {
		folder, err := timeseries.New(timeseries.Options{Width: o.window, Capacity: 256})
		if err != nil {
			return nil, err
		}
		d.series = folder
		sinks = append(sinks, d.series)
	}

	cfg := ctrl.Config{
		Graph:      g,
		Sink:       obs.Multi(sinks...),
		BatchSize:  o.batch,
		QueueDepth: o.queue,
	}
	// The wall clock stays out of internal/ctrl: the daemon injects the
	// wall→model mapping, so requests without an explicit "at" are stamped
	// at timescale model units per second since start.
	start := time.Now()
	scale := o.timescale
	cfg.Clock = func() float64 { return time.Since(start).Seconds() * scale }

	if o.estWindow > 0 {
		est, err := estimate.New(g, o.estWindow, o.estAlpha)
		if err != nil {
			return nil, err
		}
		adapt := scheme.Adaptive(core.AdaptRederive, nil)
		tc, ok := adapt.Policy().(sim.TableCompiler)
		if !ok {
			return nil, fmt.Errorf("altd: adaptive policy does not compile")
		}
		cfg.Policy, cfg.Estimator, cfg.Adapt, cfg.RefreshEvery = tc, est, adapt, o.refresh
	} else {
		tc, ok := scheme.Controlled().(sim.TableCompiler)
		if !ok {
			return nil, fmt.Errorf("altd: controlled policy does not compile")
		}
		cfg.Policy = tc
	}

	srv, err := ctrl.NewServer(cfg)
	if err != nil {
		return nil, err
	}
	d.srv = srv

	mux := srv.Mux()
	mux.Handle("GET /metrics", metricsHandler(d.reg, d.series))
	mux.Handle("GET /debug/vars", expvar.Handler())
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	d.http = &http.Server{Handler: mux}

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return nil, err
	}
	d.ln = ln
	return d, nil
}

// metricsHandler serves the Prometheus exposition from the live registry
// plus the time-series collector when enabled.
func metricsHandler(reg *obs.Registry, series *timeseries.Folder) http.Handler {
	var extra []obs.PromCollector
	if series != nil {
		extra = append(extra, series)
	}
	return obs.PromHandler(reg, extra...)
}

// addr returns the bound listen address (resolves ":0").
func (d *daemon) addr() string { return d.ln.Addr().String() }

// run starts the decision loop, the tick loop, and the HTTP front end; it
// blocks until the HTTP server is shut down.
func (d *daemon) run() error {
	d.srv.Start()
	if d.tick > 0 {
		d.tickWG.Add(1)
		go func() {
			defer d.tickWG.Done()
			t := time.NewTicker(d.tick)
			defer t.Stop()
			for {
				select {
				case <-d.tickStop:
					return
				case <-t.C:
					// Stamped by the injected clock; drives estimator
					// window folds and due estimate epochs even when no
					// requests arrive.
					if err := d.srv.Tick(0, false); err != nil {
						return
					}
				}
			}
		}()
	}
	err := d.http.Serve(d.ln)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// shutdown drains the daemon: stop ticking, stop accepting and finish
// in-flight HTTP requests, drain the decision queue, then flush the event
// stream. Safe to call once.
func (d *daemon) shutdown(ctx context.Context) error {
	close(d.tickStop)
	d.tickWG.Wait()
	err := d.http.Shutdown(ctx)
	d.srv.Shutdown()
	if d.jsonl != nil {
		if ferr := d.jsonl.Flush(); ferr != nil && err == nil {
			err = ferr
		}
		if cerr := d.eventsFile.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

func run(args []string, stderr io.Writer) int {
	o, err := parseFlags(args, stderr)
	if err != nil {
		return 2
	}
	d, err := newDaemon(o, stderr)
	if err != nil {
		fmt.Fprintln(stderr, "altd:", err)
		return 1
	}
	fmt.Fprintf(stderr, "altd: serving control API on http://%s (scenario %s)\n", d.addr(), o.scenario)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- d.run() }()

	select {
	case s := <-sig:
		fmt.Fprintf(stderr, "altd: %v, draining\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := d.shutdown(ctx); err != nil {
			fmt.Fprintln(stderr, "altd: shutdown:", err)
			return 1
		}
		<-done
	case err := <-done:
		if err != nil {
			fmt.Fprintln(stderr, "altd:", err)
			return 1
		}
	}
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stderr))
}
