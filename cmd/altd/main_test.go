package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ctrl"
	"repro/internal/netio"
	"repro/internal/obs"
	"repro/internal/sim"
)

// writeScenario drops a small quadrangle scenario file and returns its
// path plus the built graph/matrix for the offline cross-check.
func writeScenario(t *testing.T, load float64) (string, *netio.Scenario) {
	t.Helper()
	sc := &netio.Scenario{
		Name:  "smoke-quadrangle",
		Nodes: []string{"a", "b", "c", "d"},
	}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			sc.Duplex = append(sc.Duplex, netio.LinkSpec{
				From: sc.Nodes[i], To: sc.Nodes[j], Capacity: 30})
		}
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i == j {
				continue
			}
			sc.Demands = append(sc.Demands, netio.DemandSpec{
				From: sc.Nodes[i], To: sc.Nodes[j], Erlangs: load})
		}
	}
	path := filepath.Join(t.TempDir(), "scenario.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Write(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path, sc
}

func postJSON[T any](t *testing.T, url string, body any) (T, int) {
	t.Helper()
	var out T
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
	return out, resp.StatusCode
}

// TestDaemonSmoke is the end-to-end smoke: boot the daemon from a scenario
// file, drive a deterministic request swarm over HTTP with model-time
// timestamps, cross-check the decision counters against an offline sim.Run
// on the equivalent trace, scrape /metrics, and shut down gracefully with
// the JSONL event stream flushed and parseable.
func TestDaemonSmoke(t *testing.T) {
	scenario, sc := writeScenario(t, 25)
	events := filepath.Join(t.TempDir(), "events.jsonl")
	o, err := parseFlags([]string{
		"-scenario", scenario,
		"-addr", "127.0.0.1:0",
		"-est-window", "0", // estimation off: decisions must replay sim.Run
		"-tick", "0",
		"-events", events,
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	d, err := newDaemon(o, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- d.run() }()
	base := "http://" + d.addr()

	// Offline ground truth on the same scenario and trace.
	tr, res, admitted := offlineTruth(t, sc, 8.0, 7)
	if res.Blocked == 0 {
		t.Fatal("trace exercises no blocking: raise the load")
	}

	// The deterministic request swarm: admits at arrivals, releases at the
	// departures of sim-admitted calls, releases first on timestamp ties
	// (the simulator drains departures before arrivals). Requests go over
	// the wire sequentially so the decision order is pinned.
	type req struct {
		at      float64
		release bool
		id      int
	}
	var reqs []req
	for _, c := range tr.Calls {
		reqs = append(reqs, req{at: c.Arrival, id: c.ID})
		if admitted[c.ID] {
			reqs = append(reqs, req{at: c.Arrival + c.Holding, release: true, id: c.ID})
		}
	}
	sort.SliceStable(reqs, func(i, j int) bool {
		if reqs[i].at != reqs[j].at {
			return reqs[i].at < reqs[j].at
		}
		return reqs[i].release && !reqs[j].release
	})
	liveAdmitted, liveBlocked := 0, 0
	for _, r := range reqs {
		at := r.at
		if r.release {
			rr, code := postJSON[ctrl.ReleaseResponse](t, base+"/release",
				ctrl.ReleaseRequest{ID: int64(r.id), At: &at})
			if code != http.StatusOK {
				t.Fatalf("release %d: %+v (%d)", r.id, rr, code)
			}
			continue
		}
		c := tr.Calls[r.id]
		ar, code := postJSON[ctrl.AdmitResponse](t, base+"/admit", ctrl.AdmitRequest{
			ID: int64(r.id), From: sc.Nodes[c.Origin], To: sc.Nodes[c.Dest], At: &at})
		if code != http.StatusOK {
			t.Fatalf("admit %d: %+v (%d)", r.id, ar, code)
		}
		if ar.Admitted != admitted[r.id] {
			t.Fatalf("call %d: live admitted=%v, sim admitted=%v", r.id, ar.Admitted, admitted[r.id])
		}
		if ar.Admitted {
			liveAdmitted++
		} else {
			liveBlocked++
		}
	}
	if int64(liveAdmitted) != res.Accepted || int64(liveBlocked) != res.Blocked {
		t.Errorf("live %d/%d vs sim %d/%d (admitted/blocked)",
			liveAdmitted, liveBlocked, res.Accepted, res.Blocked)
	}

	// Status agrees with the swarm's own counts.
	resp, err := http.Get(base + "/status")
	if err != nil {
		t.Fatal(err)
	}
	var st ctrl.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Metrics.Admitted != uint64(liveAdmitted) || st.Metrics.Blocked != uint64(liveBlocked) {
		t.Errorf("status counters %+v, want %d/%d", st.Metrics, liveAdmitted, liveBlocked)
	}

	// /metrics serves the Prometheus exposition from the live registry.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "altroute_calls_accepted_total") {
		t.Error("/metrics misses altroute_calls_accepted_total")
	}

	// Graceful shutdown flushes the JSONL stream; every decision must be
	// in it.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := d.shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	ef, err := os.Open(events)
	if err != nil {
		t.Fatal(err)
	}
	defer ef.Close()
	evs, err := obs.ReadJSONL(ef)
	if err != nil {
		t.Fatal(err)
	}
	var offered int
	for _, e := range evs {
		if e.Kind == obs.KindCallOffered {
			offered++
		}
	}
	if offered != len(tr.Calls) {
		t.Errorf("event stream has %d offered, want %d", offered, len(tr.Calls))
	}

	// Post-shutdown requests are refused, not hung.
	if _, err := http.Get(base + "/status"); err == nil {
		t.Error("status after shutdown must fail")
	}
}

// admitLog records which calls an offline sim.Run admitted.
type admitLog map[int]bool

func (a admitLog) Event(e obs.Event) {
	if e.Kind == obs.KindCallAdmitted {
		a[e.Call] = true
	}
}

// offlineTruth derives the same controlled policy the daemon derives with
// estimation disabled and runs the offline simulator on a generated trace,
// returning the trace, the result, and the per-call admission verdicts.
func offlineTruth(t *testing.T, sc *netio.Scenario, horizon float64, seed int64) (*sim.Trace, *sim.Result, admitLog) {
	t.Helper()
	g, m, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	scheme, err := core.New(g, m, core.Options{H: sc.H})
	if err != nil {
		t.Fatal(err)
	}
	tr := sim.GenerateTrace(m, horizon, seed)
	admitted := make(admitLog)
	res, err := sim.Run(sim.Config{Graph: g, Policy: scheme.Controlled(), Trace: tr, Sink: admitted})
	if err != nil {
		t.Fatal(err)
	}
	return tr, res, admitted
}
