package main

import "testing"

func TestListExitsClean(t *testing.T) {
	if got := run([]string{"-list"}); got != 0 {
		t.Fatalf("-list exit = %d, want 0", got)
	}
}

func TestUnknownRuleIsUsageError(t *testing.T) {
	if got := run([]string{"-rules", "no-such-rule", "./..."}); got != 2 {
		t.Fatalf("unknown rule exit = %d, want 2", got)
	}
}

func TestFixtureFindingsExitNonzero(t *testing.T) {
	if got := run([]string{"repro/internal/analysis/testdata/src/nondet"}); got != 1 {
		t.Fatalf("fixture exit = %d, want 1", got)
	}
}

func TestCleanPackageExitsZero(t *testing.T) {
	if got := run([]string{"repro/internal/erlang"}); got != 0 {
		t.Fatalf("clean package exit = %d, want 0", got)
	}
}
