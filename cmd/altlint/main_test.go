package main

import (
	"encoding/json"
	"io"
	"os"
	"strings"
	"testing"
)

// captured runs fn with the given standard stream swapped for a pipe and
// returns everything written to it.
func captured(t *testing.T, stream **os.File, fn func()) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatalf("pipe: %v", err)
	}
	orig := *stream
	*stream = w
	defer func() { *stream = orig }()
	fn()
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("reading pipe: %v", err)
	}
	return string(out)
}

func TestListExitsClean(t *testing.T) {
	if got := run([]string{"-list"}); got != 0 {
		t.Fatalf("-list exit = %d, want 0", got)
	}
}

func TestUnknownRuleIsUsageError(t *testing.T) {
	var code int
	stderr := captured(t, &os.Stderr, func() {
		code = run([]string{"-rules", "no-such-rule", "./..."})
	})
	if code != 2 {
		t.Fatalf("unknown rule exit = %d, want 2", code)
	}
	for _, want := range []string{`unknown rule "no-such-rule"`, "valid rules:", "nondet-source", "hotpath"} {
		if !strings.Contains(stderr, want) {
			t.Errorf("stderr %q does not mention %q", stderr, want)
		}
	}
}

func TestJSONOutput(t *testing.T) {
	var code int
	stdout := captured(t, &os.Stdout, func() {
		code = run([]string{"-json", "repro/internal/analysis/testdata/src/nondet"})
	})
	if code != 1 {
		t.Fatalf("fixture exit = %d, want 1", code)
	}
	var findings []jsonFinding
	if err := json.Unmarshal([]byte(stdout), &findings); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, stdout)
	}
	if len(findings) == 0 {
		t.Fatal("JSON output is empty, want the fixture's findings")
	}
	for _, f := range findings {
		if f.File == "" || f.Line <= 0 || f.Col <= 0 || f.Rule == "" || f.Message == "" {
			t.Errorf("incomplete JSON finding: %+v", f)
		}
	}
}

func TestFixtureFindingsExitNonzero(t *testing.T) {
	if got := run([]string{"repro/internal/analysis/testdata/src/nondet"}); got != 1 {
		t.Fatalf("fixture exit = %d, want 1", got)
	}
}

func TestCleanPackageExitsZero(t *testing.T) {
	if got := run([]string{"repro/internal/erlang"}); got != 0 {
		t.Fatalf("clean package exit = %d, want 0", got)
	}
}
