// Command altlint runs the repository's determinism and float-identity
// static-analysis pass (internal/analysis) over package patterns and prints
// findings as file:line: rule: message.
//
// Usage:
//
//	altlint [-rules rule1,rule2] [-list] [packages...]
//
// With no patterns it analyzes ./.... The exit status is 0 when the tree is
// clean, 1 when there are findings, and 2 on a loading or usage error.
// Findings are suppressed with `//altlint:ignore <rule> <reason>` on the
// flagged line or the line above; the reason is mandatory.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("altlint", flag.ContinueOnError)
	rules := fs.String("rules", "", "comma-separated rule names to run (default: all)")
	list := fs.Bool("list", false, "list the available rules and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	all := analysis.All()
	if *list {
		for _, a := range all {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	selected := all
	if *rules != "" {
		byName := make(map[string]*analysis.Analyzer, len(all))
		for _, a := range all {
			byName[a.Name] = a
		}
		selected = nil
		for _, name := range strings.Split(*rules, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "altlint: unknown rule %q (try -list)\n", name)
				return 2
			}
			selected = append(selected, a)
		}
	}

	pkgs, err := analysis.Load("", fs.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	findings := analysis.Run(pkgs, selected)
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "altlint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
