// Command altlint runs the repository's determinism and float-identity
// static-analysis pass (internal/analysis) over package patterns and prints
// findings as file:line:col: rule: message.
//
// Usage:
//
//	altlint [-rules rule1,rule2] [-list] [-json] [-baseline file] [-update-baseline] [packages...]
//
// With no patterns it analyzes ./.... The exit status is 0 when the tree is
// clean, 1 when there are findings, and 2 on a loading or usage error.
// Findings are suppressed with `//altlint:ignore <rule> <reason>` on the
// flagged line or the line above; the reason is mandatory.
//
// -baseline names the sanctioned-escape file the hotpath rule diffs
// against (empty means an empty baseline). -update-baseline recompiles the
// annotated packages and rewrites that file from the observed escapes
// before linting — the `BASELINE_UPDATE=1 make lint` path. -json prints
// findings as a JSON array instead of text.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// jsonFinding is the -json wire form of one finding.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

func run(args []string) int {
	fs := flag.NewFlagSet("altlint", flag.ContinueOnError)
	rules := fs.String("rules", "", "comma-separated rule names to run (default: all)")
	list := fs.Bool("list", false, "list the available rules and exit")
	jsonOut := fs.Bool("json", false, "print findings as a JSON array")
	baselinePath := fs.String("baseline", "", "hotpath escape baseline file (empty: no sanctioned escapes)")
	update := fs.Bool("update-baseline", false, "rewrite -baseline from the observed escapes before linting")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	all := analysis.All()
	if *list {
		for _, a := range all {
			fmt.Printf("%-20s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	selected := all
	if *rules != "" {
		byName := make(map[string]*analysis.Analyzer, len(all))
		valid := make([]string, 0, len(all))
		for _, a := range all {
			byName[a.Name] = a
			valid = append(valid, a.Name)
		}
		selected = nil
		for _, name := range strings.Split(*rules, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "altlint: unknown rule %q; valid rules: %s\n", name, strings.Join(valid, ", "))
				return 2
			}
			selected = append(selected, a)
		}
	}
	if len(selected) == 0 {
		// Unreachable today (an unknown name errors above), but a selection
		// of zero analyzers must never pass vacuously.
		fmt.Fprintln(os.Stderr, "altlint: no rules selected")
		return 2
	}

	pkgs, err := analysis.Load("", fs.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	if *update {
		path := *baselinePath
		if path == "" {
			path = "lint_baseline.json"
		}
		if code := writeBaseline(pkgs, path); code != 0 {
			return code
		}
		*baselinePath = path
	}
	var baseline *analysis.Baseline
	if *baselinePath != "" {
		baseline, err = analysis.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "altlint:", err)
			return 2
		}
	}

	findings := analysis.RunOpts(pkgs, selected, baseline)
	if *jsonOut {
		out := make([]jsonFinding, len(findings))
		for i, f := range findings {
			out[i] = jsonFinding{File: f.Pos.Filename, Line: f.Pos.Line, Col: f.Pos.Column, Rule: f.Rule, Message: f.Message}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "altlint:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "altlint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// writeBaseline recompiles the annotated packages and rewrites path with
// the observed hotpath escape sets.
func writeBaseline(pkgs []*analysis.Package, path string) int {
	hp, err := analysis.HotpathBaseline(pkgs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "altlint: collecting hotpath baseline:", err)
		return 2
	}
	data, err := json.MarshalIndent(analysis.Baseline{Hotpath: hp}, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "altlint:", err)
		return 2
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "altlint:", err)
		return 2
	}
	total := 0
	keys := make([]string, 0, len(hp))
	for k, msgs := range hp {
		keys = append(keys, k)
		total += len(msgs)
	}
	sort.Strings(keys)
	fmt.Fprintf(os.Stderr, "altlint: %s updated: %d hotpath function(s), %d sanctioned escape(s)\n", path, len(keys), total)
	return 0
}
