package altroute_test

import (
	"strings"
	"testing"

	altroute "repro"
)

func TestFacadeTopologies(t *testing.T) {
	g := altroute.NewGraph()
	if g.NumNodes() != 0 {
		t.Error("NewGraph not empty")
	}
	k6 := altroute.CompleteGraph(6, 25)
	if k6.NumLinks() != 30 {
		t.Errorf("K6 links = %d", k6.NumLinks())
	}
	if !k6.Connected() {
		t.Error("K6 disconnected")
	}
	m := altroute.NewMatrix(6)
	m.SetDemand(0, 1, 4)
	if m.Total() != 4 {
		t.Errorf("Total = %v", m.Total())
	}
}

func TestFacadeFig2AndCensus(t *testing.T) {
	fig := altroute.Fig2(50, []int{2, 5})
	if fig.Capacity != 50 || len(fig.Curves) != 2 {
		t.Errorf("Fig2 shape %d/%d", fig.Capacity, len(fig.Curves))
	}
	if !strings.Contains(fig.String(), "Figure 2") {
		t.Error("Fig2 render malformed")
	}
	census, err := altroute.AlternateCensus(6)
	if err != nil {
		t.Fatal(err)
	}
	if census.Pairs != 132 {
		t.Errorf("census pairs %d", census.Pairs)
	}
}

func TestFacadeQuadrangleFigure(t *testing.T) {
	sweep, err := altroute.QuadrangleFigure([]float64{85}, 0, altroute.SimParams{Seeds: 1, Warmup: 5, Horizon: 20})
	if err != nil {
		t.Fatal(err)
	}
	if sweep.SeriesByName("controlled-alternate") == nil {
		t.Error("missing controlled series")
	}
	var csv strings.Builder
	if err := sweep.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), "x,") {
		t.Error("CSV header missing")
	}
}

func TestFacadeCellular(t *testing.T) {
	results, err := altroute.CompareCellular(altroute.CellularConfig{Load: 45, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("modes = %d", len(results))
	}
	for _, mode := range []altroute.CellularMode{
		altroute.NoBorrowing, altroute.UncontrolledBorrowing, altroute.ControlledBorrowing,
	} {
		res, ok := results[mode]
		if !ok || res.Offered == 0 {
			t.Errorf("mode %v missing or empty", mode)
		}
	}
	single, err := altroute.RunCellular(altroute.CellularConfig{Load: 45, Seed: 1}, altroute.NoBorrowing)
	if err != nil {
		t.Fatal(err)
	}
	if single.Blocked != results[altroute.NoBorrowing].Blocked {
		t.Error("RunCellular disagrees with CompareCellular on identical arrivals")
	}
}

func TestFacadeScenarioRoundTrip(t *testing.T) {
	g := altroute.Quadrangle()
	m := altroute.UniformMatrix(4, 50)
	scen, err := altroute.ScenarioFromNetwork("quad", g, m, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := scen.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := altroute.ReadScenario(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	g2, m2, err := back.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumLinks() != 12 || m2.Total() != 600 {
		t.Errorf("round trip: %d links, %v Erlangs", g2.NumLinks(), m2.Total())
	}
	// The rebuilt network drives the full pipeline.
	scheme, err := altroute.NewScheme(g2, m2, altroute.SchemeOptions{H: back.H})
	if err != nil {
		t.Fatal(err)
	}
	if scheme.H != 3 {
		t.Errorf("H = %d", scheme.H)
	}
}

func TestFacadeControlledPolicyAndRouteTable(t *testing.T) {
	g := altroute.Quadrangle()
	tbl, err := altroute.BuildRouteTable(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.MaxHops() != 2 {
		t.Errorf("MaxHops = %d", tbl.MaxHops())
	}
	rs := make([]int, g.NumLinks())
	for i := range rs {
		rs[i] = 5
	}
	pol := altroute.NewControlledPolicy(tbl, rs)
	if pol.Name() != "controlled-alternate" {
		t.Errorf("Name = %q", pol.Name())
	}
	m := altroute.UniformMatrix(4, 70)
	tr := altroute.GenerateTrace(m, 20, 2)
	res, err := altroute.Run(altroute.RunConfig{Graph: g, Policy: pol, Trace: tr, Warmup: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Offered == 0 {
		t.Error("no traffic")
	}
}

func TestFacadeNSFNetFigureWithOttKrishnan(t *testing.T) {
	sweep, err := altroute.NSFNetFigure([]float64{10}, 11, true, altroute.SimParams{Seeds: 1, Warmup: 5, Horizon: 20})
	if err != nil {
		t.Fatal(err)
	}
	if sweep.SeriesByName("ott-krishnan") == nil {
		t.Error("missing Ott–Krishnan series")
	}
	var j strings.Builder
	if err := sweep.WriteJSON(&j); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(j.String(), "ott-krishnan") {
		t.Error("JSON export missing series")
	}
}

func TestFacadeMultiRate(t *testing.T) {
	g := altroute.Quadrangle()
	tbl, err := altroute.BuildRouteTable(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	classes := []altroute.CallClass{
		{Name: "voice", Bandwidth: 1, Demand: altroute.UniformMatrix(4, 40)},
		{Name: "video", Bandwidth: 6, Demand: altroute.UniformMatrix(4, 5)},
	}
	prot, err := altroute.DeriveMultiRateProtection(g, tbl, classes)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := altroute.GenerateMultiRateTrace(classes, 40, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := altroute.RunMultiRate(altroute.MultiRateConfig{
		Graph: g, Table: tbl, Discipline: altroute.MultiRateControlled,
		Protection: prot, Trace: tr, Warmup: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Offered == 0 || res.Offered != res.Accepted+res.Blocked {
		t.Fatalf("accounting: %+v", res)
	}
	// Analytic helpers.
	bs, err := altroute.KaufmanRoberts([]altroute.ClassLoad{
		{Erlangs: 40, Bandwidth: 1}, {Erlangs: 5, Bandwidth: 6},
	}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 2 || bs[1] <= bs[0] {
		t.Errorf("video should block more than voice: %v", bs)
	}
	r, err := altroute.MultiRateProtectionLevel([]altroute.ClassLoad{
		{Erlangs: 70, Bandwidth: 1},
	}, 100, 6)
	if err != nil {
		t.Fatal(err)
	}
	if r != altroute.ProtectionLevel(70, 100, 6) {
		t.Errorf("single-class multi-rate r=%d disagrees with Equation 15", r)
	}
}

func TestFacadeFixedPoint(t *testing.T) {
	g := altroute.Quadrangle()
	m := altroute.UniformMatrix(4, 90)
	tbl, err := altroute.BuildRouteTable(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	network, perLink, err := altroute.SolveFixedPoint(g, m, tbl)
	if err != nil {
		t.Fatal(err)
	}
	want := altroute.ErlangB(90, 100)
	if network < want*0.99 || network > want*1.01 {
		t.Errorf("fixed point %v, want ≈%v", network, want)
	}
	if len(perLink) != g.NumLinks() {
		t.Errorf("perLink length %d", len(perLink))
	}
}
