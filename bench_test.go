package altroute_test

// One benchmark per table and figure of the paper (see DESIGN.md's
// per-experiment index), plus micro-benchmarks of the underlying machinery
// and ablation benches for the design choices. Benchmarks run scaled-down
// replications (1 seed, short horizons) so the full suite completes in
// minutes; the cmd/altsim harness runs the paper-fidelity versions.

import (
	"strconv"
	"testing"

	altroute "repro"
	"repro/internal/dalfar"
	"repro/internal/exact"
	"repro/internal/experiments"
	"repro/internal/optimize"
	"repro/internal/paths"
)

// benchParams is the scaled-down replication used inside benchmarks.
var benchParams = altroute.SimParams{Seeds: 1, Warmup: 5, Horizon: 30}

func BenchmarkFig2ProtectionCurves(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if res := altroute.Fig2(0, nil); len(res.Curves) != 3 {
			b.Fatal("bad result")
		}
	}
}

func BenchmarkFig3Quadrangle(b *testing.B) {
	// Figure 3 (linear axis): the full policy comparison at the crossover
	// region loads.
	for i := 0; i < b.N; i++ {
		if _, err := altroute.QuadrangleFigure([]float64{85, 90, 95}, 0, benchParams); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4QuadrangleLowLoad(b *testing.B) {
	// Figure 4 (log axis) emphasizes the low-load regime.
	for i := 0; i < b.N; i++ {
		if _, err := altroute.QuadrangleFigure([]float64{65, 75}, 0, benchParams); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := altroute.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Verify(1e-4, 26); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6NSFNet(b *testing.B) {
	// Figure 6 (linear axis): nominal and above.
	for i := 0; i < b.N; i++ {
		if _, err := altroute.NSFNetFigure([]float64{10, 12}, 11, false, benchParams); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7NSFNetLowLoad(b *testing.B) {
	// Figure 7 (log axis) emphasizes loads below nominal.
	for i := 0; i < b.N; i++ {
		if _, err := altroute.NSFNetFigure([]float64{6, 8}, 11, false, benchParams); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkH6CensusAndSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := altroute.AlternateCensus(6); err != nil {
			b.Fatal(err)
		}
		if _, err := altroute.NSFNetFigure([]float64{10}, 6, false, benchParams); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLinkFailures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.LinkFailures([]float64{12}, 11, benchParams); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSkewness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Skewness(10, 6, benchParams); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinLossOptimizer(b *testing.B) {
	g := altroute.NSFNet()
	m, err := altroute.NSFNetNominalMatrix()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := optimize.MinLossPrimaries(g, m, optimize.Options{MaxIterations: 50}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinLossStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.MinLossStudy([]float64{10}, 11, benchParams); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOttKrishnanSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := altroute.NSFNetFigure([]float64{12}, 11, true, benchParams); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMitraGibbens(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.MitraGibbens(experiments.MitraGibbensOptions{
			Loads: []float64{115},
			MaxR:  6,
			Sim:   altroute.SimParams{Seeds: 1, Warmup: 5, Horizon: 25},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCellular(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Cellular([]float64{48}, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRobustness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Robustness([]float64{10}, 11, benchParams); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSignaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Signaling([]float64{0, 0.01}, 11, benchParams); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkErlangBoundNSFNet(b *testing.B) {
	g := altroute.NSFNet()
	m, err := altroute.NSFNetNominalMatrix()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := altroute.ErlangBound(g, m); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Micro-benchmarks of the core machinery ---

func BenchmarkErlangB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		altroute.ErlangB(87.3, 100)
	}
}

func BenchmarkProtectionLevel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		altroute.ProtectionLevel(87.3, 100, 11)
	}
}

func BenchmarkTraceGenerationNSFNet(b *testing.B) {
	m, err := altroute.NSFNetNominalMatrix()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := altroute.GenerateTrace(m, 110, int64(i))
		if len(tr.Calls) == 0 {
			b.Fatal("empty trace")
		}
	}
}

func BenchmarkRouteTableBuildNSFNet(b *testing.B) {
	g := altroute.NSFNet()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := altroute.BuildRouteTable(g, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPolicyNSFNet measures one nominal-load simulation run per policy
// (an ablation of per-call routing cost).
func BenchmarkPolicyNSFNet(b *testing.B) {
	g := altroute.NSFNet()
	m, err := altroute.NSFNetNominalMatrix()
	if err != nil {
		b.Fatal(err)
	}
	scheme, err := altroute.NewScheme(g, m, altroute.SchemeOptions{H: 11})
	if err != nil {
		b.Fatal(err)
	}
	ok, err := scheme.OttKrishnan()
	if err != nil {
		b.Fatal(err)
	}
	tr := altroute.GenerateTrace(m, 40, 1)
	for _, pol := range []altroute.Policy{
		scheme.SinglePath(), scheme.Uncontrolled(), scheme.Controlled(), ok,
	} {
		b.Run(pol.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := altroute.Run(altroute.RunConfig{
					Graph: g, Policy: pol, Trace: tr, Warmup: 5,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Simulation-core throughput guards (see BENCH_sim.json) ---

// BenchmarkRunCalls measures end-to-end simulation throughput in calls/sec:
// arrival generation plus the full event loop, NSFNet at nominal load under
// the controlled policy. The "replay" variant isolates the event loop by
// reusing one pregenerated trace; "stream" regenerates arrivals every
// iteration
// (the long-horizon usage streaming generation exists for).
func BenchmarkRunCalls(b *testing.B) {
	g := altroute.NSFNet()
	m, err := altroute.NSFNetNominalMatrix()
	if err != nil {
		b.Fatal(err)
	}
	scheme, err := altroute.NewScheme(g, m, altroute.SchemeOptions{H: 11})
	if err != nil {
		b.Fatal(err)
	}
	pol := scheme.Controlled()
	const horizon, warmup = 60, 10

	b.Run("stream", func(b *testing.B) {
		var calls int64
		carried := 0.0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			src, err := altroute.NewArrivalStream(m, horizon, 1)
			if err != nil {
				b.Fatal(err)
			}
			res, err := altroute.Run(altroute.RunConfig{Graph: g, Policy: pol, Source: src, Warmup: warmup})
			if err != nil {
				b.Fatal(err)
			}
			calls += res.Offered
			carried = res.Throughput()
		}
		b.StopTimer()
		b.ReportMetric(float64(calls)/b.Elapsed().Seconds(), "calls/sec")
		b.ReportMetric(carried, "carried/unit")
	})

	tr := altroute.GenerateTrace(m, horizon, 1)
	b.Run("replay", func(b *testing.B) {
		var calls int64
		carried := 0.0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := altroute.Run(altroute.RunConfig{Graph: g, Policy: pol, Trace: tr, Warmup: warmup})
			if err != nil {
				b.Fatal(err)
			}
			calls += res.Offered
			carried = res.Throughput()
		}
		b.StopTimer()
		b.ReportMetric(float64(calls)/b.Elapsed().Seconds(), "calls/sec")
		b.ReportMetric(carried, "carried/unit")
	})
}

// BenchmarkRunShardedCalls measures the sharded engine on its natural
// workload: the metro topology under a locality-weighted matrix, replaying
// one pregenerated trace. "shards=1" is the no-overhead contract — the
// request must dispatch to the sequential engine at sequential speed —
// while "shards=4" runs the conservative parallel loops (on a multi-core
// host the speedup shows here; on a single exposed core it measures the
// barrier protocol's overhead). Guarded by benchguard against
// BENCH_shard.json via `-metric shard-seq -metric shard-multi`.
func BenchmarkRunShardedCalls(b *testing.B) {
	const pops, popSize = 50, 4 // 200 nodes: the scale sharding exists for
	g := altroute.Metro(pops, popSize, 30, 60)
	// inter ≪ intra: with ~39k cross-pop ordered pairs vs 600 intra, 0.001
	// Erlang keeps the synchronization-bearing cross traffic near 1% of
	// the offered load — the regime the metro generator models.
	m := altroute.MetroLocalityMatrix(pops, popSize, 6.0, 0.001)
	scheme, err := altroute.NewScheme(g, m, altroute.SchemeOptions{H: 2})
	if err != nil {
		b.Fatal(err)
	}
	pol := scheme.Controlled()
	const horizon, warmup = 40, 5
	tr := altroute.GenerateTrace(m, horizon, 1)
	// Warm the lazily built flat route table so neither sub-benchmark's
	// first iteration pays the one-time flatten.
	if _, err := altroute.Run(altroute.RunConfig{
		Graph: g, Policy: pol, Trace: tr, Warmup: warmup,
	}); err != nil {
		b.Fatal(err)
	}

	for _, shards := range []int{1, 4} {
		b.Run("shards="+strconv.Itoa(shards), func(b *testing.B) {
			var calls int64
			carried := 0.0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := altroute.Run(altroute.RunConfig{
					Graph: g, Policy: pol, Trace: tr, Warmup: warmup, Shards: shards,
				})
				if err != nil {
					b.Fatal(err)
				}
				calls += res.Offered
				carried = res.Throughput()
			}
			b.StopTimer()
			b.ReportMetric(float64(calls)/b.Elapsed().Seconds(), "calls/sec")
			b.ReportMetric(carried, "carried/unit")
		})
	}
}

// BenchmarkEq15Search measures the Equation-15 protection-level derivation
// as the scheme construction performs it: one search per link, across a
// grid of load scalings of both paper networks (the shape of the
// capacity/robustness sweeps). The "cold" variant starts every grid pass
// with an empty Erlang cache, so it measures batch derivation with only
// within-pass symmetry dedup; "shared" reuses one cache across passes — the
// steady state of a sweep service re-deriving schemes over recurring link
// profiles.
func BenchmarkEq15Search(b *testing.B) {
	type network struct {
		loads []float64
		caps  []int
		h     int
	}
	collect := func(g *altroute.Graph, loads []float64, h int) network {
		caps := make([]int, g.NumLinks())
		for id := range caps {
			caps[id] = g.Link(altroute.LinkID(id)).Capacity
		}
		return network{loads: loads, caps: caps, h: h}
	}
	qg := altroute.Quadrangle()
	qm := altroute.UniformMatrix(4, 90)
	qs, err := altroute.NewScheme(qg, qm, altroute.SchemeOptions{})
	if err != nil {
		b.Fatal(err)
	}
	ng := altroute.NSFNet()
	nm, err := altroute.NSFNetNominalMatrix()
	if err != nil {
		b.Fatal(err)
	}
	ns, err := altroute.NewScheme(ng, nm, altroute.SchemeOptions{H: 11})
	if err != nil {
		b.Fatal(err)
	}
	nets := []network{collect(qg, qs.LinkLoads, qs.H), collect(ng, ns.LinkLoads, ns.H)}
	scales := []float64{0.6, 0.7, 0.8, 0.9, 1.0, 1.1, 1.2, 1.3, 1.4}
	pass := func(cache *altroute.ErlangCache) int {
		sum := 0
		for _, net := range nets {
			scaled := make([]float64, len(net.loads))
			for _, scale := range scales {
				for id, l := range net.loads {
					scaled[id] = l * scale
				}
				for _, r := range altroute.ProtectionLevels(scaled, net.caps, net.h, cache) {
					sum += r
				}
			}
		}
		return sum
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if pass(altroute.NewErlangCache()) == 0 {
				b.Fatal("degenerate protection levels")
			}
		}
	})
	b.Run("shared", func(b *testing.B) {
		cache := altroute.NewErlangCache()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if pass(cache) == 0 {
				b.Fatal("degenerate protection levels")
			}
		}
	})
}

// --- Observability overhead guard (see BENCH_obs.json) ---

// noopSink is the cheapest possible attached sink; the pair of benchmarks
// below isolates the cost of the emission sites themselves (event
// construction + interface dispatch), not of any consumer.
type noopSink struct{}

func (noopSink) Event(altroute.Event) {}

func benchObsRun(b *testing.B, sink altroute.EventSink) {
	g := altroute.Quadrangle()
	m := altroute.UniformMatrix(4, 90)
	scheme, err := altroute.NewScheme(g, m, altroute.SchemeOptions{})
	if err != nil {
		b.Fatal(err)
	}
	pol := scheme.Controlled()
	tr := altroute.GenerateTrace(m, 40, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := altroute.Run(altroute.RunConfig{
			Graph: g, Policy: pol, Trace: tr, Warmup: 5, Sink: sink,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunBare is the disabled-observability baseline: a nil sink reduces
// every emission site to a single predictable branch.
func BenchmarkRunBare(b *testing.B) { benchObsRun(b, nil) }

// BenchmarkRunInstrumented attaches a no-op sink, paying full event
// construction and dispatch at every site.
func BenchmarkRunInstrumented(b *testing.B) { benchObsRun(b, noopSink{}) }

// BenchmarkRunTimeseries attaches a live streaming time-series folder
// (window width 5, ring of 64 windows, regime detector on), the heaviest
// first-party consumer: every event folds lock-free into windowed counters,
// with a mutex taken only at window and run boundaries. Its marginal cost
// over the no-op sink is the <2% budget BENCH_obs.json records.
func BenchmarkRunTimeseries(b *testing.B) {
	series, err := altroute.NewTimeSeries(altroute.TimeSeriesOptions{
		Width:    5,
		Capacity: 64,
		Detector: &altroute.RegimeDetectorConfig{},
	})
	if err != nil {
		b.Fatal(err)
	}
	benchObsRun(b, series)
}

// --- Ablation benches for the design choices DESIGN.md calls out ---

// BenchmarkAblationProtectionLevel compares blocking across uniform
// protection levels around the Equation-15 choice on the quadrangle at 95 E,
// reporting blocked calls as a custom metric (lower is better).
func BenchmarkAblationProtectionLevel(b *testing.B) {
	g := altroute.Quadrangle()
	load := 95.0
	m := altroute.UniformMatrix(4, load)
	tbl, err := altroute.BuildRouteTable(g, 0)
	if err != nil {
		b.Fatal(err)
	}
	eq15 := altroute.ProtectionLevel(load, 100, 3)
	for _, r := range []int{0, eq15 / 2, eq15, eq15 * 2, 100} {
		rs := make([]int, g.NumLinks())
		for i := range rs {
			rs[i] = r
		}
		pol := altroute.NewControlledPolicy(tbl, rs)
		b.Run(benchName("r", r), func(b *testing.B) {
			var blocked, offered int64
			for i := 0; i < b.N; i++ {
				tr := altroute.GenerateTrace(m, 40, int64(i))
				res, err := altroute.Run(altroute.RunConfig{Graph: g, Policy: pol, Trace: tr, Warmup: 5})
				if err != nil {
					b.Fatal(err)
				}
				blocked += res.Blocked
				offered += res.Offered
			}
			b.ReportMetric(float64(blocked)/float64(offered), "blocking")
		})
	}
}

// BenchmarkAblationH compares the H design parameter on NSFNet at nominal.
func BenchmarkAblationH(b *testing.B) {
	g := altroute.NSFNet()
	m, err := altroute.NSFNetNominalMatrix()
	if err != nil {
		b.Fatal(err)
	}
	for _, h := range []int{2, 4, 6, 11} {
		scheme, err := altroute.NewScheme(g, m, altroute.SchemeOptions{H: h})
		if err != nil {
			b.Fatal(err)
		}
		pol := scheme.Controlled()
		b.Run(benchName("H", h), func(b *testing.B) {
			var blocked, offered int64
			for i := 0; i < b.N; i++ {
				tr := altroute.GenerateTrace(m, 40, int64(i))
				res, err := altroute.Run(altroute.RunConfig{Graph: g, Policy: pol, Trace: tr, Warmup: 5})
				if err != nil {
					b.Fatal(err)
				}
				blocked += res.Blocked
				offered += res.Offered
			}
			b.ReportMetric(float64(blocked)/float64(offered), "blocking")
		})
	}
}

func benchName(prefix string, v int) string {
	return prefix + "=" + strconv.Itoa(v)
}

func BenchmarkMultiRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.MultiRate([]float64{90}, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFixedPoint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.FixedPointStudy([]float64{10}, benchParams); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOverflowRuleAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.OverflowRuleStudy([]float64{12}, 11, benchParams); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRampRobustness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RampRobustness(benchParams); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHVariantsAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.HVariants([]float64{10}, benchParams); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFocusedOverload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.FocusedOverload([]float64{6}, 11, benchParams); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGeneralMesh(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.GeneralMesh(3, benchParams); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPeakedness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Peakedness(10, 11, benchParams); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRetrials(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Retrials([]float64{0.5}, 11, benchParams); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInsensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Insensitivity(11, benchParams); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Micro-benchmarks of supporting algorithms ---

func BenchmarkSuurballeDisjointPairNSFNet(b *testing.B) {
	g := altroute.NSFNet()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := paths.DisjointPair(g, 0, 7); !ok {
			b.Fatal("no disjoint pair")
		}
	}
}

func BenchmarkKaufmanRoberts(b *testing.B) {
	classes := []altroute.ClassLoad{
		{Erlangs: 60, Bandwidth: 1},
		{Erlangs: 5, Bandwidth: 6},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := altroute.KaufmanRoberts(classes, 100); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExactTriangleSolve(b *testing.B) {
	g := altroute.CompleteGraph(3, 2)
	var demands []exact.Demand
	for o := altroute.NodeID(0); o < 3; o++ {
		for d := altroute.NodeID(0); d < 3; d++ {
			if o == d {
				continue
			}
			prim, _ := paths.MinHop(g, o, d)
			alts := paths.Alternates(g, o, d, prim, 2)
			demands = append(demands, exact.Demand{Origin: o, Dest: d, Rate: 2, Routes: []paths.Path{prim, alts[0]}})
		}
	}
	model := exact.Model{Graph: g, Demands: demands, Admit: func(int, paths.Path, []int) bool { return true }}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exact.Solve(model, 0, 1e-8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDalfarConvergence(b *testing.B) {
	g := altroute.NSFNet()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dalfar.Run(g); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Parallel experiment-engine guard (see BENCH_par.json) ---

// BenchmarkBlockingSweep measures a whole blocking sweep — per-point scheme
// derivation, seed replications, and Erlang bounds — sequentially
// (Parallelism=1) and on the parallel engine (Parallelism=0, one worker per
// GOMAXPROCS slot). The two produce bit-identical sweeps by contract (the
// golden parallel-equivalence suite proves it); their wall-clock ratio is
// the speedup recorded in BENCH_par.json.
func BenchmarkBlockingSweep(b *testing.B) {
	sweeps := []struct {
		name string
		run  func(p altroute.SimParams) error
	}{
		{"nsfnet", func(p altroute.SimParams) error {
			_, err := altroute.NSFNetFigure([]float64{8, 10, 12}, 11, false, p)
			return err
		}},
		{"quadrangle", func(p altroute.SimParams) error {
			_, err := altroute.QuadrangleFigure([]float64{85, 90, 95}, 0, p)
			return err
		}},
	}
	modes := []struct {
		name        string
		parallelism int
	}{
		{"sequential", 1},
		{"parallel", 0},
	}
	for _, sw := range sweeps {
		for _, mode := range modes {
			b.Run(sw.name+"/"+mode.name, func(b *testing.B) {
				p := altroute.SimParams{Seeds: 4, Warmup: 5, Horizon: 30, Parallelism: mode.parallelism}
				for i := 0; i < b.N; i++ {
					if err := sw.run(p); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
